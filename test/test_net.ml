(* The message-passing substrate: the simulated network's transport and
   fault timeline, the quorum register emulations (including the
   crash-mid-quorum and heal-mid-operation edge cases), and the
   determinism contract of full stacks built over it. *)

open Tbwf_sim
open Tbwf_registers
open Tbwf_net

(* --- pure timeline queries ------------------------------------------------ *)

let cfg ?(replicas = 3) ?(base_latency = 3) ?(jitter = 2)
    ?(retransmit_every = 12) ?(events = []) () =
  { Net.replicas; base_latency; jitter; retransmit_every; events }

let test_validate () =
  let ok c = Result.is_ok (Net.validate_config c) in
  Alcotest.(check bool) "default ok" true (ok Net.default_config);
  Alcotest.(check bool) "no replicas" false (ok (cfg ~replicas:0 ()));
  Alcotest.(check bool) "negative jitter" false (ok (cfg ~jitter:(-1) ()));
  Alcotest.(check bool)
    "zero base latency" false
    (ok (cfg ~base_latency:0 ()))

let test_partition_timeline () =
  let c =
    cfg
      ~events:
        [
          Net.Ev_partition { at = 100; side = [ 0 ] };
          Net.Ev_heal { at = 200 };
          Net.Ev_partition { at = 300; side = [ 1; 2 ] };
        ]
      ()
  in
  Alcotest.(check bool) "before: open" false (Net.cut_at c ~at:50 0 3);
  Alcotest.(check bool) "cut from side" true (Net.cut_at c ~at:150 0 3);
  Alcotest.(check bool)
    "complement stays connected" false
    (Net.cut_at c ~at:150 1 3);
  Alcotest.(check bool) "healed" false (Net.cut_at c ~at:250 0 3);
  Alcotest.(check bool) "last cut wins" true (Net.cut_at c ~at:350 1 3);
  Alcotest.(check bool)
    "within new side: open" false
    (Net.cut_at c ~at:350 1 2)

let test_drop_and_delay_interpolation () =
  let c =
    cfg
      ~events:
        [
          Net.Ev_drop
            { from_ = 100; until = 300; rate0 = 0.0; rate1 = 1.0; node = None };
          Net.Ev_delay
            {
              from_ = 100;
              until = 300;
              extra0 = 0.0;
              extra1 = 10.0;
              node = Some 2;
            };
        ]
      ()
  in
  Alcotest.(check (float 1e-9)) "before window" 0.0 (Net.drop_rate_at c ~at:50 0 3);
  Alcotest.(check (float 1e-9)) "window start" 0.0 (Net.drop_rate_at c ~at:100 0 3);
  Alcotest.(check (float 1e-9)) "midpoint" 0.5 (Net.drop_rate_at c ~at:200 0 3);
  Alcotest.(check (float 1e-9)) "after window" 0.0 (Net.drop_rate_at c ~at:300 0 3);
  Alcotest.(check int) "delay matches node" 5 (Net.extra_delay_at c ~at:200 2 4);
  Alcotest.(check int) "delay other link" 0 (Net.extra_delay_at c ~at:200 0 4)

(* --- transport ------------------------------------------------------------ *)

(* Two clients + 3 replicas; client 1 posts to client 0, who polls until
   delivery. Exercises send/poll, latency bounds, and key demux. *)
let test_send_poll () =
  let config = cfg () in
  let rt = Runtime.create ~seed:7L ~n:5 () in
  let net = Net.create rt ~config in
  let got = ref [] in
  let key = Net.fresh_key net ~pid:0 in
  Runtime.spawn rt ~pid:1 ~name:"sender" (fun () ->
      Net.send net ~dst:0 ~key (Value.Int 42);
      Net.send net ~dst:0 ~key (Value.Int 43));
  Runtime.spawn rt ~pid:0 ~name:"receiver" (fun () ->
      while List.length !got < 2 do
        List.iter
          (fun (src, k, v) -> got := (src, k, v) :: !got)
          (Net.poll net ~key)
      done);
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:2_000;
  Runtime.stop rt;
  Alcotest.(check int) "both delivered" 2 (List.length !got);
  List.iter
    (fun (src, k, _) ->
      Alcotest.(check int) "from sender" 1 src;
      Alcotest.(check int) "key echoed" key k)
    !got

(* A full partition of the receiver drops everything; after the heal,
   retransmitted messages get through. *)
let test_partition_drops_heal_delivers () =
  let config =
    cfg
      ~events:
        [ Net.Ev_partition { at = 0; side = [ 0 ] }; Net.Ev_heal { at = 400 } ]
      ()
  in
  let rt = Runtime.create ~seed:7L ~n:5 () in
  let net = Net.create rt ~config in
  let got = ref 0 in
  let before_heal = ref (-1) in
  let key = Net.fresh_key net ~pid:0 in
  Runtime.spawn rt ~pid:1 ~name:"sender" (fun () ->
      (* keep retransmitting; sends before the heal are cut at send time *)
      while !got = 0 do
        Net.send net ~dst:0 ~key (Value.Int 1);
        Runtime.yield ()
      done);
  Runtime.spawn rt ~pid:0 ~name:"receiver" (fun () ->
      while !got = 0 do
        (match Net.poll net ~key with
        | [] -> ()
        | l -> got := List.length l);
        if !got > 0 && Runtime.now rt < 400 then before_heal := Runtime.now rt
      done);
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:3_000;
  Runtime.stop rt;
  Alcotest.(check bool) "delivered after heal" true (!got > 0);
  Alcotest.(check int) "nothing before heal" (-1) !before_heal

(* --- quorum registers ----------------------------------------------------- *)

let client_pids = [ 0; 1 ]
let mp_runtime ?(seed = 11L) ?(events = []) () =
  let config = cfg ~events () in
  let rt = Runtime.create ~seed ~n:(2 + config.Net.replicas) () in
  let net = Net.create rt ~config in
  let cluster = Mp_reg.Cluster.create rt ~net in
  rt, cluster

(* One writer incrementing, one reader: reads must be monotonic (ABD's
   read-back phase), and the final peek must be the last completed
   write. *)
let test_abd_monotonic_reads () =
  let rt, cluster = mp_runtime () in
  let r = Mp_reg.atomic cluster ~name:"R" ~codec:Codec.int ~init:0 in
  let written = ref 0 and seen = ref [] in
  Runtime.spawn rt ~pid:0 ~name:"writer" (fun () ->
      for k = 1 to 50 do
        r.Reg.write k;
        written := k
      done);
  Runtime.spawn rt ~pid:1 ~name:"reader" (fun () ->
      while true do
        seen := r.Reg.read () :: !seen
      done);
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:60_000;
  Runtime.stop rt;
  ignore client_pids;
  let seen = List.rev !seen in
  Alcotest.(check bool) "writer made progress" true (!written >= 10);
  Alcotest.(check bool) "reader made progress" true (List.length seen >= 10);
  let monotonic =
    fst
      (List.fold_left
         (fun (ok, prev) v -> (ok && v >= prev, v))
         (true, min_int) seen)
  in
  Alcotest.(check bool) "reads monotonic" true monotonic;
  Alcotest.(check int) "peek sees last write" !written (r.Reg.peek ())

(* Satellite: the writer crashes at an arbitrary step — including between
   ABD phase 1 (timestamp query) and phase 2 (the actual write round).
   Whatever the crash point, readers must stay monotonic and keep
   completing reads afterwards. *)
let qcheck_writer_crash_mid_quorum =
  QCheck.Test.make ~name:"ABD: writer crash at any step keeps reads monotonic"
    ~count:40
    QCheck.(int_range 50 4_000)
    (fun crash_step ->
      let rt, cluster = mp_runtime ~seed:23L () in
      let r = Mp_reg.atomic cluster ~name:"R" ~codec:Codec.int ~init:0 in
      let seen = ref [] and reads_after_crash = ref 0 in
      Runtime.crash_at rt ~pid:0 ~step:crash_step;
      Runtime.spawn rt ~pid:0 ~name:"writer" (fun () ->
          for k = 1 to 1_000 do
            r.Reg.write k
          done);
      Runtime.spawn rt ~pid:1 ~name:"reader" (fun () ->
          while true do
            let v = r.Reg.read () in
            seen := v :: !seen;
            if Runtime.now rt > crash_step then incr reads_after_crash
          done);
      Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:12_000;
      Runtime.stop rt;
      let seen = List.rev !seen in
      let monotonic =
        fst
          (List.fold_left
             (fun (ok, prev) v -> (ok && v >= prev, v))
             (true, min_int) seen)
      in
      monotonic && !reads_after_crash > 0)

(* Minority replica crash: quorums shrink to the live majority and every
   register kind keeps operating. *)
let test_minority_replica_crash_tolerated () =
  let rt, cluster = mp_runtime () in
  let a = Mp_reg.atomic cluster ~name:"A" ~codec:Codec.int ~init:0 in
  let s =
    Mp_reg.regular cluster ~name:"S" ~codec:Codec.int ~init:0 ~writer:0
  in
  (* replica 2 is pid 4 *)
  Runtime.crash_at rt ~pid:4 ~step:500;
  let done_ops = ref 0 in
  Runtime.spawn rt ~pid:0 ~name:"writer" (fun () ->
      for k = 1 to 40 do
        a.Reg.write k;
        s.Reg.write k;
        done_ops := k
      done);
  Runtime.spawn rt ~pid:1 ~name:"reader" (fun () ->
      while true do
        ignore (a.Reg.read ());
        ignore (s.Reg.read ())
      done);
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:60_000;
  Runtime.stop rt;
  Alcotest.(check int) "all writes completed despite the crash" 40 !done_ops

(* Satellite: a partition isolating a replica *majority* blocks quorum
   operations mid-flight; the heal lets the same in-flight operations
   complete via retransmission — across register kinds. *)
let test_partition_heals_mid_operation () =
  (* replicas are pids 2,3,4: cutting {2,3} leaves only replica 4
     reachable — no quorum — from step 300 until the heal at 2000. *)
  let events =
    [
      Net.Ev_partition { at = 300; side = [ 2; 3 ] }; Net.Ev_heal { at = 2_000 };
    ]
  in
  let rt, cluster = mp_runtime ~events () in
  let a = Mp_reg.atomic cluster ~name:"A" ~codec:Codec.int ~init:0 in
  let s =
    Mp_reg.regular cluster ~name:"S" ~codec:Codec.int ~init:0 ~writer:0
  in
  let ab =
    Mp_reg.abortable cluster ~name:"B" ~codec:Codec.int ~init:0 ~writer:0
      ~reader:1 ~policy:Abort_policy.Always ~write_effect:None
  in
  let log = ref [] in
  let record k = log := (k, Runtime.now rt) :: !log in
  Runtime.spawn rt ~pid:0 ~name:"writer" (fun () ->
      for k = 1 to 30 do
        a.Reg.write k;
        record `A;
        s.Reg.write k;
        record `S;
        ignore (ab.Reg.Abortable.write k);
        record `B
      done);
  Runtime.spawn rt ~pid:1 ~name:"reader" (fun () ->
      while true do
        ignore (a.Reg.read ());
        ignore (s.Reg.read ());
        ignore (ab.Reg.Abortable.read ());
        record `R
      done);
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:80_000;
  Runtime.stop rt;
  let during, after =
    List.partition (fun (_, at) -> at < 2_000) !log
  in
  let stalled =
    List.for_all (fun (_, at) -> at < 450) during
    (* a short grace window: operations in flight when the cut lands may
       still complete off majority replies that left before it *)
  in
  Alcotest.(check bool) "no completions under a majority cut" true stalled;
  Alcotest.(check bool)
    "all kinds complete after the heal" true
    (List.exists (fun (k, _) -> k = `A) after
    && List.exists (fun (k, _) -> k = `S) after
    && List.exists (fun (k, _) -> k = `B) after
    && List.exists (fun (k, _) -> k = `R) after)

(* MP abortable: contention-gated policies never fire (writes succeed),
   Unconditional fires exactly as on shared memory. *)
let test_mp_abortable_policies () =
  let rt, cluster = mp_runtime () in
  let always =
    Mp_reg.abortable cluster ~name:"G" ~codec:Codec.int ~init:0 ~writer:0
      ~reader:1 ~policy:Abort_policy.Always ~write_effect:None
  in
  let doomed =
    Mp_reg.abortable cluster ~name:"D" ~codec:Codec.int ~init:0 ~writer:0
      ~reader:1
      ~policy:(Abort_policy.Unconditional (fun _ -> true))
      ~write_effect:None
  in
  let ok_writes = ref 0 and aborted_writes = ref 0 in
  Runtime.spawn rt ~pid:0 ~name:"writer" (fun () ->
      for k = 1 to 20 do
        if always.Reg.Abortable.write k then incr ok_writes;
        if not (doomed.Reg.Abortable.write k) then incr aborted_writes
      done);
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:40_000;
  Runtime.stop rt;
  Alcotest.(check int) "contention-gated never aborts solo quorums" 20
    !ok_writes;
  Alcotest.(check int) "unconditional always aborts" 20 !aborted_writes

(* --- full stacks over message passing ------------------------------------- *)

let build_mp_stack ?(seed = 3L) () =
  Tbwf_system.System.build ~seed
    ~substrate:(Tbwf_system.System.Message_passing (cfg ()))
    ~telemetry:true ~n:2 Tbwf_system.System.Tbwf_atomic

let mp_policy =
  (* empty plan sized for the stack: a timely rotation over clients and
     replica pids alike *)
  Tbwf_nemesis.Fault_plan.policy
    (Tbwf_nemesis.Fault_plan.make ~replicas:3 ~n:2 ~horizon:100_000 [])

let test_compiled_backend_rejected () =
  Alcotest.check_raises "compiled + message passing"
    (Invalid_argument
       "System.build: the compiled backend requires the shared-memory substrate")
    (fun () ->
      ignore
        (Tbwf_system.System.build ~backend:Backend.Compiled
           ~substrate:(Tbwf_system.System.Message_passing (cfg ()))
           ~n:2 Tbwf_system.System.Tbwf_atomic))

let test_mp_stack_progresses () =
  let stack = build_mp_stack () in
  Runtime.run stack.Tbwf_system.System.rt ~policy:mp_policy ~steps:40_000;
  let completed = stack.Tbwf_system.System.stats.Tbwf_core.Workload.completed in
  Runtime.stop stack.Tbwf_system.System.rt;
  Array.iteri
    (fun pid c ->
      Alcotest.(check bool)
        (Fmt.str "client %d completed ops (got %d)" pid c)
        true (c > 0))
    completed;
  let telemetry = Option.get stack.Tbwf_system.System.telemetry in
  Alcotest.(check bool)
    "messages flowed" true
    (Tbwf_telemetry.Collector.net_sent telemetry > 0)

(* Same (system, seed, config): byte-identical fingerprints and
   telemetry; and replaying the recorded schedule reproduces both. *)
let qcheck_mp_replay_byte_identical =
  QCheck.Test.make
    ~name:"message-passing run replays byte-identically" ~count:10
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let seed = Int64.of_int seed in
      let run policy steps =
        let stack = build_mp_stack ~seed () in
        Runtime.run stack.Tbwf_system.System.rt ~policy ~steps;
        let fp = Trace.fingerprint (Runtime.trace stack.Tbwf_system.System.rt) in
        let snap =
          Tbwf_telemetry.Collector.snapshot_string
            (Option.get stack.Tbwf_system.System.telemetry)
        in
        let sched = Trace.schedule (Runtime.trace stack.Tbwf_system.System.rt) in
        Runtime.stop stack.Tbwf_system.System.rt;
        fp, snap, sched
      in
      let fp, snap, sched = run mp_policy 8_000 in
      let fp', snap', _ = run (Policy.replay sched) 8_000 in
      String.equal fp fp' && String.equal snap snap')

let () =
  Alcotest.run "net"
    [
      ( "timeline",
        [
          Alcotest.test_case "validate" `Quick test_validate;
          Alcotest.test_case "partition" `Quick test_partition_timeline;
          Alcotest.test_case "drop/delay interpolation" `Quick
            test_drop_and_delay_interpolation;
        ] );
      ( "transport",
        [
          Alcotest.test_case "send/poll" `Quick test_send_poll;
          Alcotest.test_case "partition drops, heal delivers" `Quick
            test_partition_drops_heal_delivers;
        ] );
      ( "registers",
        [
          Alcotest.test_case "ABD monotonic reads" `Quick
            test_abd_monotonic_reads;
          QCheck_alcotest.to_alcotest qcheck_writer_crash_mid_quorum;
          Alcotest.test_case "minority replica crash" `Quick
            test_minority_replica_crash_tolerated;
          Alcotest.test_case "partition heals mid-operation" `Quick
            test_partition_heals_mid_operation;
          Alcotest.test_case "abortable policies" `Quick
            test_mp_abortable_policies;
        ] );
      ( "stacks",
        [
          Alcotest.test_case "compiled backend rejected" `Quick
            test_compiled_backend_rejected;
          Alcotest.test_case "stack progresses" `Quick test_mp_stack_progresses;
          QCheck_alcotest.to_alcotest qcheck_mp_replay_byte_identical;
        ] );
    ]
