(* Schedule exploration: the invariants of the clean scenarios hold over
   EVERY interleaving; the planted bugs are found by exhaustive search and
   by fuzzing; witnesses shrink, serialize and replay deterministically;
   and the partial-order reduction prunes an order of magnitude of
   schedules without changing any verdict. *)

open Tbwf_sim
open Tbwf_check
open Tbwf_experiments

let find name =
  match Explore_scenarios.find name with
  | Some s -> s
  | None -> Alcotest.failf "unknown scenario %s" name

let check_option_schedule = Alcotest.(option (list int))

(* --- clean scenarios: no violating schedule exists ----------------------- *)

let test_clean_all_schedules () =
  List.iter
    (fun name ->
      let s = find name in
      let outcome = Explore_scenarios.exhaustive s in
      Alcotest.check check_option_schedule
        (name ^ ": no violating schedule") None outcome.Explore.violation;
      Alcotest.(check bool) (name ^ ": search exhausted") true
        outcome.Explore.exhausted;
      Alcotest.(check bool) (name ^ ": nontrivial exploration") true
        (outcome.Explore.schedules > 5))
    [ "atomic2"; "abortable2"; "qa2"; "regs3" ]

(* --- explorers agree, reduction is real ---------------------------------- *)

let test_por_agrees_and_reduces () =
  let naive_total = ref 0 and por_total = ref 0 in
  List.iter
    (fun s ->
      let naive = Explore_scenarios.exhaustive_naive s in
      let dfs = Explore_scenarios.exhaustive ~por:false s in
      let por = Explore_scenarios.exhaustive s in
      let found o = o.Explore.violation <> None in
      Alcotest.(check bool)
        (s.Explore_scenarios.name ^ ": naive verdict")
        s.Explore_scenarios.expect_violation (found naive);
      Alcotest.(check bool)
        (s.Explore_scenarios.name ^ ": dfs verdict")
        s.Explore_scenarios.expect_violation (found dfs);
      Alcotest.(check bool)
        (s.Explore_scenarios.name ^ ": por verdict")
        s.Explore_scenarios.expect_violation (found por);
      Alcotest.(check bool)
        (s.Explore_scenarios.name ^ ": por never explores more than dfs")
        true
        (por.Explore.schedules <= dfs.Explore.schedules);
      naive_total := !naive_total + naive.Explore.schedules;
      por_total := !por_total + por.Explore.schedules)
    Explore_scenarios.all;
  Alcotest.(check bool)
    (Fmt.str "POR executes >=10x fewer schedules (naive %d vs POR %d)"
       !naive_total !por_total)
    true
    (!naive_total >= 10 * !por_total)

let test_por_reduction_on_disjoint_registers () =
  let s = find "regs3" in
  let naive = Explore_scenarios.exhaustive_naive s in
  let por = Explore_scenarios.exhaustive s in
  Alcotest.(check bool)
    (Fmt.str "regs3 alone >=10x (naive %d vs POR %d)" naive.Explore.schedules
       por.Explore.schedules)
    true
    (naive.Explore.schedules >= 10 * por.Explore.schedules)

(* --- violations: found, witnessed, replayable ---------------------------- *)

let test_explorer_finds_violations () =
  List.iter
    (fun name ->
      let s = find name in
      let outcome = Explore_scenarios.exhaustive s in
      match outcome.Explore.violation with
      | None -> Alcotest.failf "%s: no witness found" name
      | Some witness ->
        Alcotest.(check bool) (name ^ ": witness replays to a violation")
          false
          (Explore_scenarios.replay s witness);
        (* the witness round-trips through the schedule text format *)
        let sched = Explore_scenarios.schedule_of s witness in
        (match Schedule.of_string (Schedule.to_string sched) with
        | Ok parsed ->
          Alcotest.(check (list int)) (name ^ ": schedule round-trip") witness
            (Schedule.pids parsed)
        | Error msg -> Alcotest.failf "%s: round-trip failed: %s" name msg))
    [ "broken1"; "mutex2" ]

(* --- budget: both the exhausted and the partial path --------------------- *)

let test_budget_partial_outcome () =
  let s = find "regs3" in
  let partial = Explore_scenarios.exhaustive ~max_schedules:10 s in
  Alcotest.(check int) "stopped exactly at the budget" 10
    partial.Explore.schedules;
  Alcotest.(check bool) "partial search is flagged" false
    partial.Explore.exhausted;
  Alcotest.check check_option_schedule "no violation in the covered part"
    None partial.Explore.violation;
  let full = Explore_scenarios.exhaustive s in
  Alcotest.(check bool) "full search is exhausted" true full.Explore.exhausted

let test_budget_partial_outcome_naive () =
  let s = find "regs3" in
  let partial = Explore_scenarios.exhaustive_naive ~max_schedules:25 s in
  Alcotest.(check int) "naive stopped at the budget" 25
    partial.Explore.schedules;
  Alcotest.(check bool) "naive partial search is flagged" false
    partial.Explore.exhausted;
  let small = Explore_scenarios.exhaustive_naive (find "broken1") in
  Alcotest.(check bool) "small naive search is exhausted"
    true
    (* the naive explorer stops at the first violation; it never exceeded
       its budget, so the space it set out to cover is done *)
    small.Explore.exhausted

(* --- fuzzing + shrinking ------------------------------------------------- *)

let test_fuzz_finds_and_shrinks_mutex () =
  let s = find "mutex2" in
  let f = Explore_scenarios.fuzz ~seed:0xF00DL ~runs:2_000 s in
  match f.Explore.counterexample with
  | None -> Alcotest.fail "fuzzer missed the mutual-exclusion violation"
  | Some minimal ->
    let original = Option.get f.Explore.shrunk_from in
    Alcotest.(check bool) "shrinking never grows" true
      (List.length minimal <= original);
    Alcotest.(check bool) "minimal schedule still violates" false
      (Explore_scenarios.replay s minimal);
    (* 1-minimality: dropping any single step loses the violation *)
    List.iteri
      (fun i _ ->
        let without = List.filteri (fun j _ -> j <> i) minimal in
        Alcotest.(check bool)
          (Fmt.str "dropping step %d loses the violation" i)
          true
          (Explore_scenarios.replay s without))
      minimal

let test_fuzz_clean_scenario_finds_nothing () =
  let f = Explore_scenarios.fuzz ~seed:42L ~runs:300 (find "atomic2") in
  Alcotest.check check_option_schedule "no counterexample on atomic2" None
    f.Explore.counterexample;
  Alcotest.(check int) "all runs executed" 300 f.Explore.fuzz_runs;
  (* budget exhausted without a witness: the partial outcome must name
     the batch that was in flight and its derived stream seed, so the
     search is resumable (same or other execution backend) *)
  let last = (300 / Explore.fuzz_batch_runs) - 1 in
  (match f.Explore.exhausted_batch with
  | Some (k, task_seed) ->
    Alcotest.(check int) "last batch recorded" last k;
    Alcotest.(check int64)
      "derived stream seed recorded"
      (Tbwf_sim.Rng.task_seed ~master:42L last)
      task_seed
  | None -> Alcotest.fail "exhausted run must record the in-flight batch")

let test_fuzz_witness_has_no_exhausted_batch () =
  let f = Explore_scenarios.fuzz ~seed:0xF00DL ~runs:2_000 (find "mutex2") in
  Alcotest.(check bool) "witness found" true (f.Explore.counterexample <> None);
  Alcotest.(check bool)
    "no exhausted batch on a witnessing run" true
    (f.Explore.exhausted_batch = None)

(* --- committed counterexample: the regression replay --------------------- *)

(* Found by `tbwf_explore fuzz mutex2` and shrunk to 1-minimality: both
   processes pass the check-then-set race and enter the critical section.
   Committed in serialized form; must reproduce byte-deterministically. *)
let committed_mutex_violation = "tbwf-sched v1 n=2 seed=1\n1x2 0x2 1 0 1 0\n"

let test_committed_counterexample_replays () =
  match Schedule.of_string committed_mutex_violation with
  | Error msg -> Alcotest.failf "committed schedule unparseable: %s" msg
  | Ok sched ->
    Alcotest.(check int) "n preserved" 2 (Schedule.n sched);
    Alcotest.(check int) "length preserved" 8 (Schedule.length sched);
    let s = find "mutex2" in
    Alcotest.(check bool) "committed schedule violates mutual exclusion"
      false
      (Explore_scenarios.replay s (Schedule.pids sched));
    (* and does so on every replay — determinism *)
    Alcotest.(check bool) "second replay identical" false
      (Explore_scenarios.replay s (Schedule.pids sched))

let () =
  Alcotest.run "explore"
    [
      ( "exhaustive",
        [
          Alcotest.test_case "clean scenarios hold on all schedules" `Slow
            test_clean_all_schedules;
          Alcotest.test_case "explorer finds planted violations" `Quick
            test_explorer_finds_violations;
          Alcotest.test_case "budget yields partial outcome" `Quick
            test_budget_partial_outcome;
          Alcotest.test_case "naive budget yields partial outcome" `Quick
            test_budget_partial_outcome_naive;
        ] );
      ( "reduction",
        [
          Alcotest.test_case "POR agrees with naive and reduces >=10x" `Slow
            test_por_agrees_and_reduces;
          Alcotest.test_case "POR >=10x on disjoint-register scenario" `Slow
            test_por_reduction_on_disjoint_registers;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "fuzz finds and shrinks mutex violation" `Quick
            test_fuzz_finds_and_shrinks_mutex;
          Alcotest.test_case "fuzz finds nothing on a clean scenario" `Quick
            test_fuzz_clean_scenario_finds_nothing;
          Alcotest.test_case "witnessing fuzz has no exhausted batch" `Quick
            test_fuzz_witness_has_no_exhausted_batch;
          Alcotest.test_case "committed counterexample replays" `Quick
            test_committed_counterexample_replays;
        ] );
    ]
