(* Exhaustive schedule exploration: the invariants below hold over EVERY
   interleaving of their (small) scenarios, not just sampled ones. *)

open Tbwf_sim
open Tbwf_registers
open Tbwf_objects
open Tbwf_check

let make_runtime n () = Runtime.create ~seed:1L ~n ()

(* --- atomic register: every interleaving is linearizable ----------------- *)

let atomic_linearizable_scenario rt =
  let reg = Atomic_reg.create rt ~name:"X" ~codec:Codec.int ~init:0 in
  for pid = 0 to 1 do
    Runtime.spawn rt ~pid ~name:"t" (fun () ->
        Atomic_reg.write reg (pid + 1);
        ignore (Atomic_reg.read reg))
  done;
  fun () ->
    let history = History.complete_ops (Runtime.trace rt) ~obj_name:"X" in
    Linearizability.check (Linearizability.register_spec ~init:(Value.Int 0)) history

let test_atomic_all_schedules () =
  let outcome =
    Explore.exhaustive ~max_steps:10 ~scenario:atomic_linearizable_scenario
      ~make_runtime:(make_runtime 2) ()
  in
  Alcotest.(check (option (list int))) "no violating schedule" None
    outcome.Explore.violation;
  Alcotest.(check bool) "explored many interleavings" true
    (outcome.Explore.schedules > 20)

(* The checker itself must be able to fail: a broken "register" that
   returns a constant wrong value is caught by some schedule. *)
let broken_register_scenario rt =
  let cell = ref (Value.Int 0) in
  let obj =
    Runtime.register_object rt ~name:"B" ~respond:(fun ctx ->
        match ctx.Shared.op with
        | Value.Pair (Str "write", v) ->
          cell := v;
          Value.Unit
        | Value.Pair (Str "read", _) -> Value.Int 999 (* always wrong *)
        | _ -> assert false)
  in
  Runtime.spawn rt ~pid:0 ~name:"t" (fun () ->
      let (_ : Value.t) = Runtime.call obj (Value.write_op (Value.Int 1)) in
      let (_ : Value.t) = Runtime.call obj Value.read_op in
      ());
  fun () ->
    let history = History.complete_ops (Runtime.trace rt) ~obj_name:"B" in
    Linearizability.check (Linearizability.register_spec ~init:(Value.Int 0)) history

let test_explorer_finds_violations () =
  let outcome =
    Explore.exhaustive ~max_steps:8 ~scenario:broken_register_scenario
      ~make_runtime:(make_runtime 1) ()
  in
  Alcotest.(check bool) "witness script found" true
    (outcome.Explore.violation <> None)

(* --- abortable register: domain safety over every interleaving ----------- *)

let abortable_domain_scenario rt =
  let reg =
    Abortable_reg.create rt ~name:"A" ~codec:Codec.int ~init:0 ~writer:0
      ~reader:1 ~policy:Abort_policy.Always
      ~write_effect:Abort_policy.Effect_always ()
  in
  let reads = ref [] in
  Runtime.spawn rt ~pid:0 ~name:"w" (fun () ->
      ignore (Abortable_reg.write reg 1);
      ignore (Abortable_reg.write reg 2));
  Runtime.spawn rt ~pid:1 ~name:"r" (fun () ->
      for _ = 1 to 2 do
        match Abortable_reg.read reg with
        | Some v ->
          let snapshot = !reads in
          reads := v :: snapshot
        | None -> ()
      done);
  fun () ->
    (* Any successful read returns a value that was written or the init,
       and the cell itself never leaves that domain. *)
    List.for_all (fun v -> v = 0 || v = 1 || v = 2) !reads
    && List.mem (Abortable_reg.peek reg) [ 0; 1; 2 ]

let test_abortable_all_schedules () =
  let outcome =
    Explore.exhaustive ~max_steps:10 ~scenario:abortable_domain_scenario
      ~make_runtime:(make_runtime 2) ()
  in
  Alcotest.(check (option (list int))) "no violating schedule" None
    outcome.Explore.violation

(* --- query-abortable object: fates are exact over every interleaving ----- *)

let qa_fate_scenario rt =
  let qa =
    Qa_object.create rt ~name:"q" ~spec:Counter.spec ~policy:Abort_policy.Always
      ~effect_on_abort:Abort_policy.Effect_always ()
  in
  let confirmed = ref [] in
  for pid = 0 to 1 do
    Runtime.spawn rt ~pid ~name:"t" (fun () ->
        let res = qa.Qa_intf.invoke Counter.inc in
        let fate =
          if Value.equal res Value.Abort then qa.Qa_intf.query () else res
        in
        match fate with
        | Value.Int v ->
          let snapshot = !confirmed in
          confirmed := v :: snapshot
        | _ -> () (* query aborted or failed: fate unknown to this process *))
  done;
  fun () ->
    (* Effect_always: both incs take effect exactly once eventually, so the
       state never exceeds 2, confirmed responses are distinct pre-increment
       values below the state, and the state always equals the number of
       effects so far. *)
    match qa.Qa_intf.peek_state () with
    | Value.Int state ->
      state >= 0 && state <= 2
      && List.length !confirmed <= state
      && List.for_all (fun v -> v >= 0 && v < state) !confirmed
      && List.sort_uniq compare !confirmed = List.sort compare !confirmed
    | _ -> false

let test_qa_fates_all_schedules () =
  let outcome =
    Explore.exhaustive ~max_steps:12 ~scenario:qa_fate_scenario
      ~make_runtime:(make_runtime 2) ()
  in
  Alcotest.(check (option (list int))) "no violating schedule" None
    outcome.Explore.violation;
  Alcotest.(check bool) "nontrivial exploration" true
    (outcome.Explore.schedules > 15)

(* --- budget guard --------------------------------------------------------- *)

let test_budget_guard () =
  let big_scenario rt =
    for pid = 0 to 2 do
      Runtime.spawn rt ~pid ~name:"t" (fun () ->
          while true do
            Runtime.yield ()
          done)
    done;
    fun () -> true
  in
  Alcotest.check_raises "budget exceeded raises"
    (Failure "Explore.exhaustive: schedule budget exceeded") (fun () ->
      ignore
        (Explore.exhaustive ~max_schedules:50 ~max_steps:30
           ~scenario:big_scenario ~make_runtime:(make_runtime 3) ()))

let () =
  Alcotest.run "explore"
    [
      ( "exhaustive",
        [
          Alcotest.test_case "atomic register linearizable on all schedules"
            `Slow test_atomic_all_schedules;
          Alcotest.test_case "explorer finds violations" `Quick
            test_explorer_finds_violations;
          Alcotest.test_case "abortable register domain-safe on all schedules"
            `Slow test_abortable_all_schedules;
          Alcotest.test_case "QA fates exact on all schedules" `Slow
            test_qa_fates_all_schedules;
          Alcotest.test_case "budget guard" `Quick test_budget_guard;
        ] );
    ]
