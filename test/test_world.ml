(* The world layer and the dynamic-membership runtime underneath it.

   Three layers of coverage: (1) runtime churn primitives — spawn_late
   before the first step, graceful retire with a pending operation
   across every register kind (mirroring test_crash_resolution), and a
   churned run byte-identically re-run under Policy.replay_strict;
   (2) the open-loop workload generator — arrivals respect the Poisson
   schedule, Zipf keys stay in range, a deferred joiner starts at its
   join step; (3) lib/world — aggregate determinism, churn accounting,
   and CLI stdout byte-identity across --jobs values. *)

open Tbwf_sim
open Tbwf_registers
module System = Tbwf_system.System
module World = Tbwf_world.World

(* --- spawn_late ----------------------------------------------------------- *)

let test_spawn_late_before_first_step () =
  let rt = Runtime.create ~seed:11L ~n:2 () in
  let hits = Array.make 3 0 in
  let client pid () =
    while true do
      hits.(pid) <- hits.(pid) + 1;
      Runtime.yield ()
    done
  in
  Runtime.spawn rt ~pid:0 ~name:"a" (client 0);
  Runtime.spawn rt ~pid:1 ~name:"b" (client 1);
  (* membership grows before the runtime has taken a single step *)
  let pid = Runtime.spawn_late rt ~name:"late" (client 2) in
  Alcotest.(check int) "late pid is the next pid" 2 pid;
  Alcotest.(check int) "n grew" 3 (Runtime.n rt);
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:90;
  Runtime.stop rt;
  Alcotest.(check bool) "late process ran" true (hits.(2) > 0);
  Alcotest.(check bool) "roughly fair" true
    (abs (hits.(2) - hits.(0)) <= 2)

let test_spawn_late_deferred () =
  let rt = Runtime.create ~seed:12L ~n:1 () in
  Runtime.spawn rt ~pid:0 ~name:"a" (fun () ->
      while true do
        Runtime.yield ()
      done);
  let pid =
    Runtime.spawn_late rt ~at:50 ~name:"late" (fun () ->
        while true do
          Runtime.yield ()
        done)
  in
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:200;
  let steps = Trace.steps_of (Runtime.trace rt) ~pid in
  Runtime.stop rt;
  Alcotest.(check bool) "joiner took steps" true (steps <> []);
  Alcotest.(check bool) "no step before its join" true
    (List.for_all (fun s -> s >= 50) steps)

(* --- retire with a pending operation, across register kinds --------------- *)

type kind = Atomic | Safe | Regular | Cas | Abortable

let kind_name = function
  | Atomic -> "atomic"
  | Safe -> "safe"
  | Regular -> "regular"
  | Cas -> "cas"
  | Abortable -> "abortable"

let all_kinds = [ Atomic; Safe; Regular; Cas; Abortable ]

(* Same scaffold as test_crash_resolution: a forever-writer on pid 0, a
   survivor on pid 1, one register of [kind]; the state check runs after
   the retire. *)
let build kind rt =
  match kind with
  | Atomic ->
    let reg = Atomic_reg.create rt ~name:"R" ~codec:Codec.int ~init:0 in
    Runtime.spawn rt ~pid:0 ~name:"w" (fun () ->
        let k = ref 0 in
        while true do
          incr k;
          Atomic_reg.write reg !k
        done);
    Runtime.spawn rt ~pid:1 ~name:"s" (fun () ->
        while true do
          ignore (Atomic_reg.read reg)
        done);
    fun () -> Atomic_reg.peek reg >= 0
  | Safe ->
    let reg =
      Safe_reg.create rt ~name:"R" ~codec:Codec.int ~init:0
        ~arbitrary:(fun rng -> Rng.int rng 1000)
    in
    Runtime.spawn rt ~pid:0 ~name:"w" (fun () ->
        let k = ref 0 in
        while true do
          incr k;
          Safe_reg.write reg !k
        done);
    Runtime.spawn rt ~pid:1 ~name:"s" (fun () ->
        while true do
          ignore (Safe_reg.read reg)
        done);
    fun () -> Safe_reg.peek reg >= 0
  | Regular ->
    let reg = Regular_reg.create rt ~name:"R" ~codec:Codec.int ~init:0 in
    Runtime.spawn rt ~pid:0 ~name:"w" (fun () ->
        let k = ref 0 in
        while true do
          incr k;
          Regular_reg.write reg !k
        done);
    Runtime.spawn rt ~pid:1 ~name:"s" (fun () ->
        while true do
          ignore (Regular_reg.read reg)
        done);
    fun () -> Regular_reg.peek reg >= 0
  | Cas ->
    let reg = Cas_reg.create rt ~name:"R" ~codec:Codec.int ~init:0 in
    Runtime.spawn rt ~pid:0 ~name:"w" (fun () ->
        let k = ref 0 in
        while true do
          incr k;
          ignore (Cas_reg.write reg !k)
        done);
    Runtime.spawn rt ~pid:1 ~name:"s" (fun () ->
        while true do
          let v = Cas_reg.read reg in
          ignore (Cas_reg.cas reg ~expected:v ~desired:(v + 1))
        done);
    fun () -> Cas_reg.peek reg >= 0
  | Abortable ->
    let reg =
      Abortable_reg.create rt ~name:"R" ~codec:Codec.int ~init:0 ~writer:0
        ~reader:1 ~policy:Abort_policy.Always ()
    in
    Runtime.spawn rt ~pid:0 ~name:"w" (fun () ->
        let k = ref 0 in
        while true do
          incr k;
          ignore (Abortable_reg.write reg !k)
        done);
    Runtime.spawn rt ~pid:1 ~name:"s" (fun () ->
        while true do
          ignore (Abortable_reg.read reg)
        done);
    fun () -> Abortable_reg.peek reg >= 0

let observe_retire kind ~retire_step =
  let rt = Runtime.create ~seed:7L ~n:2 () in
  let state_ok = build kind rt in
  let retires = ref 0 in
  Runtime.set_sink rt
    {
      Sink.nil with
      Sink.active = true;
      on_signal =
        (fun ~step:_ ~pid:_ s ->
          match s with Sink.Retire _ -> incr retires | _ -> ());
    };
  Runtime.retire rt ~at:retire_step ~pid:0;
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:300;
  let trace = Runtime.trace rt in
  let ops = Trace.ops trace in
  Runtime.stop rt;
  let count pid phase =
    List.length
      (List.filter
         (fun (e : Trace.op_event) ->
           e.Trace.pid = pid
           &&
           match (e.Trace.phase, phase) with
           | `Invoke, `I | `Respond _, `R -> true
           | _ -> false)
         ops)
  in
  let inv0 = count 0 `I and resp0 = count 0 `R in
  let no_posthumous =
    List.for_all
      (fun (e : Trace.op_event) ->
        e.Trace.pid <> 0 || e.Trace.step <= retire_step)
      ops
  in
  let survivor_progress =
    List.exists
      (fun (e : Trace.op_event) ->
        e.Trace.pid = 1
        && e.Trace.step > retire_step
        && match e.Trace.phase with `Respond _ -> true | `Invoke -> false)
      ops
  in
  let resolved_mid_op =
    List.exists
      (fun (e : Trace.op_event) ->
        e.Trace.pid = 0
        && (match e.Trace.phase with `Respond _ -> true | `Invoke -> false)
        && e.Trace.step < Trace.length trace
        && Trace.pid_at trace e.Trace.step <> 0)
      ops
  in
  let ok =
    inv0 = resp0 && no_posthumous && survivor_progress && state_ok ()
    && !retires = 1
  in
  resolved_mid_op, ok

let test_retire_pending kind () =
  let any_mid_op = ref false in
  for retire_step = 1 to 60 do
    let resolved_mid_op, ok = observe_retire kind ~retire_step in
    if resolved_mid_op then any_mid_op := true;
    if not ok then
      Alcotest.failf "%s: retire at %d violated resolution invariants"
        (kind_name kind) retire_step
  done;
  (* operations cost two own-steps, so a 60-step scan provably catches
     at least one retire landing inside an invoke/respond window *)
  Alcotest.(check bool) "some retire landed mid-operation" true !any_mid_op

(* --- churn under strict replay -------------------------------------------- *)

(* A churned cell (open-loop clients, a deferred joiner, one retire, one
   crash) records its schedule; re-running the identical cell under
   Policy.replay_strict must not raise and must reproduce the trace
   byte-for-byte. This is the determinism contract the world layer's
   --jobs byte-identity rests on. *)
let churned_cell () =
  let stack =
    System.build ~seed:21L ~record_trace:true ~client_pids:[] ~n:4
      ~spec:Tbwf_objects.Kv_store.spec System.Tbwf_atomic
  in
  let rt = stack.System.rt in
  let profile =
    { Tbwf_core.Workload.Open_loop.mean_gap = 120.0; keys = 8; zipf = 1.1 }
  in
  let op_of_key ~pid ~k ~key =
    let name = "k" ^ string_of_int key in
    if k land 1 = 0 then Tbwf_objects.Kv_store.put name (Value.Int pid)
    else Tbwf_objects.Kv_store.get name
  in
  Tbwf_core.Workload.Open_loop.spawn_clients rt ~pids:[ 0; 1; 2 ]
    ~stats:stack.System.stats ~invoke:stack.System.invoke ~profile ~seed:21L
    ~until:4_000 ~op_of_key;
  Runtime.spawn_at ~layer:Sink.App rt ~pid:3 ~at:700 ~name:"open-loop"
    (Tbwf_core.Workload.Open_loop.client_body rt ~pid:3
       ~stats:stack.System.stats ~invoke:stack.System.invoke ~profile
       ~seed:21L ~until:4_000 ~op_of_key);
  Runtime.retire rt ~at:1_500 ~pid:1;
  Runtime.crash_at rt ~pid:2 ~step:2_200;
  rt

let test_churn_replay_strict () =
  let rt1 = churned_cell () in
  Runtime.run rt1 ~policy:(Policy.round_robin ()) ~steps:4_000;
  let sched = Trace.schedule (Runtime.trace rt1) in
  let fp1 = Trace.fingerprint (Runtime.trace rt1) in
  Runtime.stop rt1;
  let rt2 = churned_cell () in
  (* replay_strict raises Replay_mismatch on any divergence *)
  Runtime.run rt2 ~policy:(Policy.replay_strict sched) ~steps:4_000;
  let fp2 = Trace.fingerprint (Runtime.trace rt2) in
  Runtime.stop rt2;
  Alcotest.(check string) "byte-identical trace under strict replay" fp1 fp2

(* --- the open-loop generator ---------------------------------------------- *)

let test_open_loop_arrivals () =
  let rt = Runtime.create ~seed:5L ~n:3 () in
  let log = ref [] in
  let invoke op =
    log := (Runtime.now rt, op) :: !log;
    Value.Unit
  in
  let stats = Tbwf_core.Workload.fresh_stats ~n:3 in
  let profile =
    { Tbwf_core.Workload.Open_loop.mean_gap = 50.0; keys = 16; zipf = 0.0 }
  in
  let keys_seen = ref [] in
  let op_of_key ~pid ~k:_ ~key =
    keys_seen := key :: !keys_seen;
    Value.Pair (Value.Int pid, Value.Int key)
  in
  Tbwf_core.Workload.Open_loop.spawn_clients rt ~pids:[ 0; 1 ] ~stats
    ~invoke ~profile ~seed:5L ~until:2_000 ~op_of_key;
  Runtime.spawn_at ~layer:Sink.App rt ~pid:2 ~at:900 ~name:"open-loop"
    (Tbwf_core.Workload.Open_loop.client_body rt ~pid:2 ~stats ~invoke
       ~profile ~seed:5L ~until:2_000 ~op_of_key);
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:2_500;
  Runtime.stop rt;
  Alcotest.(check bool) "initial clients issued" true
    (stats.Tbwf_core.Workload.issued.(0) > 10
    && stats.Tbwf_core.Workload.issued.(1) > 10);
  Alcotest.(check bool) "joiner issued" true
    (stats.Tbwf_core.Workload.issued.(2) > 0);
  Alcotest.(check bool) "every key in range" true
    (List.for_all (fun k -> k >= 0 && k < 16) !keys_seen);
  (* the joiner's arrival clock starts at its join step, never before *)
  Alcotest.(check bool) "no arrival before the joiner's join" true
    (List.for_all
       (fun (step, op) ->
         match op with
         | Value.Pair (Value.Int 2, _) -> step >= 900
         | _ -> true)
       !log);
  (* open-loop: issue counts track the arrival schedule, not the
     (instant) service time — about until/mean_gap arrivals *)
  Alcotest.(check bool) "issue counts bounded by the schedule" true
    (stats.Tbwf_core.Workload.issued.(0) < 2 * (2_000 / 50))

let test_open_loop_deterministic () =
  let run () =
    let rt = Runtime.create ~seed:5L ~n:2 () in
    let log = ref [] in
    let invoke op =
      log := (Runtime.now rt, op) :: !log;
      Value.Unit
    in
    let stats = Tbwf_core.Workload.fresh_stats ~n:2 in
    let profile =
      { Tbwf_core.Workload.Open_loop.mean_gap = 40.0; keys = 8; zipf = 1.5 }
    in
    let op_of_key ~pid ~k:_ ~key = Value.Pair (Value.Int pid, Value.Int key) in
    Tbwf_core.Workload.Open_loop.spawn_clients rt ~pids:[ 0; 1 ] ~stats
      ~invoke ~profile ~seed:99L ~until:1_500 ~op_of_key;
    Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:1_800;
    Runtime.stop rt;
    !log
  in
  Alcotest.(check bool) "identical arrival and key sequences" true
    (run () = run ())

(* --- Fault_plan.Retire ---------------------------------------------------- *)

let test_retire_atom_roundtrip () =
  let open Tbwf_nemesis in
  let plan =
    Fault_plan.make ~n:4 ~horizon:10_000
      [
        Fault_plan.Retire { pid = 2; at = 3_000 };
        Fault_plan.Crash { pid = 1; at = 4_000 };
      ]
  in
  let text = Fault_plan.to_string plan in
  (match Fault_plan.of_string text with
  | Ok plan' ->
    Alcotest.(check bool) "round-trips" true (Fault_plan.equal plan plan')
  | Error e -> Alcotest.failf "parse failed: %s" e);
  Alcotest.(check (list int)) "retired and crashed pids excluded" [ 0; 3 ]
    (Fault_plan.predicted_timely plan);
  Alcotest.(check int) "settles at the last leave" 4_000
    (Fault_plan.settle_step plan)

(* --- lib/world ------------------------------------------------------------ *)

let small_world =
  {
    World.default with
    World.shards = 6;
    n = 4;
    joiners = 1;
    leavers = 1;
    horizon = 8_000;
    every = Some 4_000;
    seed = 42L;
  }

let test_world_churn_accounting () =
  let seen = ref 0 in
  let summary =
    World.run
      ~on_shard:(fun r ->
        incr seen;
        let { World.ch_joins; ch_leaves } = r.World.ws_churn in
        Alcotest.(check int) "one join per shard" 1 (List.length ch_joins);
        Alcotest.(check int) "one leave per shard" 1 (List.length ch_leaves);
        List.iter
          (fun (pid, at) ->
            Alcotest.(check int) "joiner is the top pid" 3 pid;
            Alcotest.(check bool) "join lands in [h/8, 3h/8)" true
              (at >= 1_000 && at < 3_000))
          ch_joins;
        List.iter
          (fun (pid, at, _) ->
            Alcotest.(check bool) "leaver is an initial non-zero pid" true
              (pid >= 1 && pid <= 2);
            Alcotest.(check bool) "leave lands in [h/4, h/2)" true
              (at >= 2_000 && at < 4_000))
          ch_leaves)
      small_world
  in
  Alcotest.(check int) "on_shard fired per shard, in order" 6 !seen;
  Alcotest.(check bool) "completed some ops" true (summary.World.sum_completed > 0);
  Alcotest.(check int) "total steps" (6 * 8_000) summary.World.sum_steps

let test_world_deterministic_aggregate () =
  let run () =
    Tbwf_telemetry.Json.to_string (World.run small_world).World.sum_json
  in
  let sequential = run () in
  let pool = Tbwf_parallel.Pool.create ~domains:3 () in
  let pooled =
    Tbwf_telemetry.Json.to_string
      (World.run ~pool small_world).World.sum_json
  in
  Alcotest.(check string) "pool does not change the aggregate" sequential
    pooled

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  text

let test_world_schema_pinned () =
  (* the tbwf-world/v1 shape is a public contract: any field add/remove/
     retype must re-bless test/golden/world_summary.schema *)
  let summary = World.run small_world in
  let actual = Tbwf_telemetry.Json.schema_string summary.World.sum_json in
  match
    List.find_opt Sys.file_exists
      [ "golden/world_summary.schema"; "test/golden/world_summary.schema" ]
  with
  | Some p ->
    Alcotest.(check string) "tbwf-world/v1 schema pinned" (read_file p) actual
  | None ->
    let oc = open_out_bin "world_summary.schema.actual" in
    output_string oc actual;
    close_out oc;
    Alcotest.fail
      "world_summary.schema golden not found (actual written to \
       world_summary.schema.actual)"

let test_world_schedule_stable () =
  (* churn_schedule is a pure function of (config, shard): predictable
     without running the shard *)
  let a = World.churn_schedule small_world ~shard:3 in
  let b = World.churn_schedule small_world ~shard:3 in
  Alcotest.(check bool) "stable" true (a = b);
  let c = World.churn_schedule small_world ~shard:4 in
  Alcotest.(check bool) "shard-dependent" true (a <> c)

(* --- CLI byte-identity across --jobs -------------------------------------- *)

let exe_path name =
  let candidates =
    [
      Filename.concat "../bin" (name ^ ".exe");
      Filename.concat "bin" (name ^ ".exe");
      Filename.concat "_build/default/bin" (name ^ ".exe");
    ]
  in
  List.find_opt Sys.file_exists candidates

let read_output cmd =
  let ic = Unix.open_process_in cmd in
  let buf = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  ignore (Unix.close_process_in ic);
  Buffer.contents buf

let test_world_jobs_byte_identity () =
  match exe_path "tbwf_world" with
  | None -> Alcotest.fail "tbwf_world.exe not found"
  | Some exe ->
    let run jobs =
      read_output
        (Printf.sprintf
           "%s --shards 6 -n 4 --steps 8000 --every 4000 --seed 42 --jobs %d \
            2>/dev/null"
           exe jobs)
    in
    let one = run 1 in
    Alcotest.(check bool) "produced output" true (String.length one > 0);
    Alcotest.(check string) "--jobs 4 is byte-identical to --jobs 1" one
      (run 4)

let () =
  Alcotest.run "world"
    [
      ( "spawn_late",
        [
          Alcotest.test_case "before first step" `Quick
            test_spawn_late_before_first_step;
          Alcotest.test_case "deferred join" `Quick test_spawn_late_deferred;
        ] );
      ( "retire",
        List.map
          (fun kind ->
            Alcotest.test_case (kind_name kind) `Quick
              (test_retire_pending kind))
          all_kinds );
      ( "replay",
        [
          Alcotest.test_case "churn under strict replay" `Quick
            test_churn_replay_strict;
        ] );
      ( "open_loop",
        [
          Alcotest.test_case "arrivals" `Quick test_open_loop_arrivals;
          Alcotest.test_case "deterministic" `Quick
            test_open_loop_deterministic;
        ] );
      ( "fault_plan",
        [
          Alcotest.test_case "retire atom round-trip" `Quick
            test_retire_atom_roundtrip;
        ] );
      ( "world",
        [
          Alcotest.test_case "churn accounting" `Quick
            test_world_churn_accounting;
          Alcotest.test_case "deterministic aggregate" `Quick
            test_world_deterministic_aggregate;
          Alcotest.test_case "stable schedules" `Quick
            test_world_schedule_stable;
          Alcotest.test_case "schema pinned" `Quick test_world_schema_pinned;
          Alcotest.test_case "--jobs byte-identity" `Quick
            test_world_jobs_byte_identity;
        ] );
    ]
