(* Crash-mid-operation resolution, across every register kind.

   A process crashed between an operation's invocation and its response
   must leave the object in a well-defined state: the runtime resolves the
   in-flight operation at crash time, so the trace shows exactly one
   response for every invocation (never a dangling invoke), nothing from
   the crashed process after the crash step, and the surviving process
   keeps completing operations against the same object. Crash steps are
   scanned over a small window so that at least one run provably lands
   inside an operation's invoke/respond window (operations cost two
   own-steps); such a run is recognizable by a response of the crashed
   process recorded during another process's scheduler step. *)

open Tbwf_sim
open Tbwf_registers

type kind = Atomic | Safe | Regular | Cas | Abortable

let kind_name = function
  | Atomic -> "atomic"
  | Safe -> "safe"
  | Regular -> "regular"
  | Cas -> "cas"
  | Abortable -> "abortable"

let all_kinds = [ Atomic; Safe; Regular; Cas; Abortable ]

(* Spawn a forever-writing task on pid 0 and a forever-operating survivor
   on pid 1, both on one register of [kind]; returns a state check run
   after the crash. *)
let build kind rt =
  match kind with
  | Atomic ->
    let reg = Atomic_reg.create rt ~name:"R" ~codec:Codec.int ~init:0 in
    Runtime.spawn rt ~pid:0 ~name:"w" (fun () ->
        let k = ref 0 in
        while true do
          incr k;
          Atomic_reg.write reg !k
        done);
    Runtime.spawn rt ~pid:1 ~name:"s" (fun () ->
        while true do
          ignore (Atomic_reg.read reg)
        done);
    fun () -> Atomic_reg.peek reg >= 0
  | Safe ->
    let reg =
      Safe_reg.create rt ~name:"R" ~codec:Codec.int ~init:0
        ~arbitrary:(fun rng -> Rng.int rng 1000)
    in
    Runtime.spawn rt ~pid:0 ~name:"w" (fun () ->
        let k = ref 0 in
        while true do
          incr k;
          Safe_reg.write reg !k
        done);
    Runtime.spawn rt ~pid:1 ~name:"s" (fun () ->
        while true do
          ignore (Safe_reg.read reg)
        done);
    fun () -> Safe_reg.peek reg >= 0
  | Regular ->
    let reg = Regular_reg.create rt ~name:"R" ~codec:Codec.int ~init:0 in
    Runtime.spawn rt ~pid:0 ~name:"w" (fun () ->
        let k = ref 0 in
        while true do
          incr k;
          Regular_reg.write reg !k
        done);
    Runtime.spawn rt ~pid:1 ~name:"s" (fun () ->
        while true do
          ignore (Regular_reg.read reg)
        done);
    fun () -> Regular_reg.peek reg >= 0
  | Cas ->
    let reg = Cas_reg.create rt ~name:"R" ~codec:Codec.int ~init:0 in
    Runtime.spawn rt ~pid:0 ~name:"w" (fun () ->
        let k = ref 0 in
        while true do
          incr k;
          Cas_reg.write reg !k
        done);
    Runtime.spawn rt ~pid:1 ~name:"s" (fun () ->
        while true do
          let v = Cas_reg.read reg in
          ignore (Cas_reg.cas reg ~expected:v ~desired:(v + 1))
        done);
    fun () -> Cas_reg.peek reg >= 0
  | Abortable ->
    let reg =
      Abortable_reg.create rt ~name:"R" ~codec:Codec.int ~init:0 ~writer:0
        ~reader:1 ~policy:Abort_policy.Always ()
    in
    Runtime.spawn rt ~pid:0 ~name:"w" (fun () ->
        let k = ref 0 in
        while true do
          incr k;
          ignore (Abortable_reg.write reg !k)
        done);
    Runtime.spawn rt ~pid:1 ~name:"s" (fun () ->
        while true do
          ignore (Abortable_reg.read reg)
        done);
    fun () -> Abortable_reg.peek reg >= 0

type observation = {
  resolved_mid_op : bool;
      (* the crash caught pid 0 between invoke and respond, and the
         runtime resolved the operation: its response was recorded during
         another process's scheduler step *)
  ok : bool;
}

let observe kind ~crash_step =
  let rt = Runtime.create ~seed:7L ~n:2 () in
  let state_ok = build kind rt in
  Runtime.crash_at rt ~pid:0 ~step:crash_step;
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:300;
  let trace = Runtime.trace rt in
  let ops = Trace.ops trace in
  Runtime.stop rt;
  let count pid phase =
    List.length
      (List.filter
         (fun (e : Trace.op_event) ->
           e.Trace.pid = pid
           &&
           match (e.Trace.phase, phase) with
           | `Invoke, `I | `Respond _, `R -> true
           | _ -> false)
         ops)
  in
  let inv0 = count 0 `I and resp0 = count 0 `R in
  let no_posthumous =
    List.for_all
      (fun (e : Trace.op_event) ->
        e.Trace.pid <> 0 || e.Trace.step <= crash_step)
      ops
  in
  let survivor_progress =
    List.exists
      (fun (e : Trace.op_event) ->
        e.Trace.pid = 1
        && e.Trace.step > crash_step
        && match e.Trace.phase with `Respond _ -> true | `Invoke -> false)
      ops
  in
  let resolved_mid_op =
    List.exists
      (fun (e : Trace.op_event) ->
        e.Trace.pid = 0
        && (match e.Trace.phase with `Respond _ -> true | `Invoke -> false)
        && e.Trace.step < Trace.length trace
        && Trace.pid_at trace e.Trace.step <> 0)
      ops
  in
  {
    resolved_mid_op;
    ok = inv0 = resp0 && no_posthumous && survivor_progress && state_ok ();
  }

let test_kind kind () =
  (* Scan a window of crash steps: every crash point must satisfy the
     invariants, and at least one must land mid-operation (resolved by the
     runtime), or the test would not be exercising resolution at all. *)
  let observations =
    List.init 8 (fun i -> observe kind ~crash_step:(20 + i))
  in
  List.iteri
    (fun i o ->
      Alcotest.(check bool)
        (Fmt.str "%s: invariants at crash step %d" (kind_name kind) (20 + i))
        true o.ok)
    observations;
  Alcotest.(check bool)
    (Fmt.str "%s: some crash lands mid-operation" (kind_name kind))
    true
    (List.exists (fun o -> o.resolved_mid_op) observations)

let () =
  Alcotest.run "crash_resolution"
    [
      ( "crash mid-operation",
        List.map
          (fun kind ->
            Alcotest.test_case (kind_name kind) `Quick (test_kind kind))
          all_kinds );
    ]
