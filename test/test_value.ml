open Tbwf_sim
open Tbwf_registers

let value = Alcotest.testable Value.pp Value.equal

let test_equal_basic () =
  Alcotest.(check bool) "ints" true (Value.equal (Int 3) (Int 3));
  Alcotest.(check bool) "ints differ" false (Value.equal (Int 3) (Int 4));
  Alcotest.(check bool) "abort=abort" true (Value.equal Abort Abort);
  Alcotest.(check bool) "abort<>fail" false (Value.equal Abort Fail);
  Alcotest.(check bool) "nested pairs" true
    (Value.equal (Pair (Int 1, Str "x")) (Pair (Int 1, Str "x")));
  Alcotest.(check bool) "lists" true
    (Value.equal (List [ Int 1; Bool true ]) (List [ Int 1; Bool true ]));
  Alcotest.(check bool) "list lengths differ" false
    (Value.equal (List [ Int 1 ]) (List [ Int 1; Int 2 ]))

let test_read_write_helpers () =
  Alcotest.(check bool) "read_op is read" true (Value.is_read Value.read_op);
  Alcotest.(check bool) "read_op not write" false (Value.is_write Value.read_op);
  Alcotest.(check bool) "write_op is write" true
    (Value.is_write (Value.write_op (Int 1)));
  Alcotest.check value "write payload shape"
    (Pair (Str "write", Int 5))
    (Value.write_op (Int 5))

let test_decoders () =
  Alcotest.(check int) "to_int" 9 (Value.to_int (Int 9));
  Alcotest.(check bool) "to_bool" true (Value.to_bool (Bool true));
  let a, b = Value.to_pair (Pair (Int 1, Int 2)) in
  Alcotest.check value "pair fst" (Int 1) a;
  Alcotest.check value "pair snd" (Int 2) b;
  Alcotest.(check int) "to_list length" 2
    (List.length (Value.to_list (List [ Unit; Unit ])));
  Alcotest.(check bool) "to_int rejects bool" true
    (try
       ignore (Value.to_int (Bool true));
       false
     with Invalid_argument _ -> true)

let test_pp_stable () =
  Alcotest.(check string) "int" "3" (Value.to_string (Int 3));
  Alcotest.(check string) "abort" "⊥" (Value.to_string Abort);
  Alcotest.(check string) "fail" "F" (Value.to_string Fail);
  Alcotest.(check string) "pair" "(1, true)"
    (Value.to_string (Pair (Int 1, Bool true)))

(* Generator for arbitrary values of bounded depth. *)
let value_gen =
  let open QCheck.Gen in
  sized @@ fix (fun self n ->
      if n <= 0 then
        oneof
          [
            return Value.Unit;
            map (fun b -> Value.Bool b) bool;
            map (fun i -> Value.Int i) small_int;
            map (fun s -> Value.Str s) (string_size (int_range 0 5));
            return Value.Abort;
            return Value.Fail;
          ]
      else
        oneof
          [
            map (fun i -> Value.Int i) small_int;
            map2 (fun a b -> Value.Pair (a, b)) (self (n / 2)) (self (n / 2));
            map (fun vs -> Value.List vs) (list_size (int_range 0 4) (self (n / 2)));
          ])

let arbitrary_value = QCheck.make ~print:Value.to_string value_gen

let qcheck_equal_reflexive =
  QCheck.Test.make ~name:"equal is reflexive" ~count:500 arbitrary_value
    (fun v -> Value.equal v v)

let qcheck_codec_roundtrips =
  QCheck.Test.make ~name:"codec roundtrips" ~count:500
    QCheck.(triple small_int bool (small_list small_int))
    (fun (i, b, xs) ->
      Codec.int.Codec.dec (Codec.int.Codec.enc i) = i
      && Codec.bool.Codec.dec (Codec.bool.Codec.enc b) = b
      && (Codec.list Codec.int).Codec.dec ((Codec.list Codec.int).Codec.enc xs) = xs
      &&
      let c = Codec.pair Codec.int Codec.bool in
      c.Codec.dec (c.Codec.enc (i, b)) = (i, b)
      &&
      let t = Codec.triple Codec.int Codec.bool Codec.int in
      t.Codec.dec (t.Codec.enc (i, b, i)) = (i, b, i))

let qcheck_value_codec_identity =
  QCheck.Test.make ~name:"value codec is identity" ~count:300 arbitrary_value
    (fun v -> Value.equal (Codec.value.Codec.dec (Codec.value.Codec.enc v)) v)

let () =
  Alcotest.run "value"
    [
      ( "unit",
        [
          Alcotest.test_case "equal basics" `Quick test_equal_basic;
          Alcotest.test_case "read/write helpers" `Quick test_read_write_helpers;
          Alcotest.test_case "decoders" `Quick test_decoders;
          Alcotest.test_case "pp stable" `Quick test_pp_stable;
        ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest
          [
            qcheck_equal_reflexive;
            qcheck_codec_roundtrips;
            qcheck_value_codec_identity;
          ] );
    ]
