(* Benchmark harness.

   Two parts:
   1. The evaluation tables — one per experiment E1..E10 (the reproduction
      of the paper's claims; see EXPERIMENTS.md). Pass --full for the
      full-size configurations (minutes), default is quick (seconds).
   2. Bechamel micro-benchmarks, one Test.make per experiment workload and
      one per stack layer, measuring wall-clock cost per execution.

   With --json the harness instead times every experiment and the
   per-layer throughput runs and writes the results to BENCH_<date>.json
   (machine-readable; includes the telemetry-overhead ratio between the
   nil-sink and collector-attached TBWF workloads). *)

open Bechamel
open Bechamel.Toolkit

let quick = not (Array.exists (String.equal "--full") Sys.argv)
let skip_micro = Array.exists (String.equal "--tables-only") Sys.argv
let json_mode = Array.exists (String.equal "--json") Sys.argv

(* --- part 1: evaluation tables ------------------------------------------ *)

let run_tables () =
  Fmt.pr "############ TBWF evaluation tables (%s mode) ############@."
    (if quick then "quick" else "full");
  Tbwf_experiments.Registry.run_all ~quick Fmt.stdout

(* --- part 2: bechamel micro-benchmarks ---------------------------------- *)

(* One Test.make per experiment: each runs that experiment's (quick)
   workload once per measured execution. E1/E2 are the expensive sweeps, so
   they get a single-config variant to keep sampling fast. *)
let experiment_tests =
  let make_test name (thunk : unit -> unit) =
    Test.make ~name (Staged.stage thunk)
  in
  [
    make_test "e1_degradation_one_config" (fun () ->
        ignore (Tbwf_experiments.E1_degradation.compute ~quick:true ()));
    make_test "e2_baselines" (fun () ->
        ignore (Tbwf_experiments.E2_baselines.compute ~quick:true ()));
    make_test "e3_obstruction" (fun () ->
        ignore (Tbwf_experiments.E3_obstruction.compute ~quick:true ()));
    make_test "e4_omega_atomic" (fun () ->
        ignore (Tbwf_experiments.E4_omega_atomic.compute ~quick:true ()));
    make_test "e5_omega_abortable" (fun () ->
        ignore (Tbwf_experiments.E5_omega_abortable.compute ~quick:true ()));
    make_test "e6_monitor_matrix" (fun () ->
        ignore (Tbwf_experiments.E6_monitor_matrix.compute ~quick:true ()));
    make_test "e7_write_efficiency" (fun () ->
        ignore (Tbwf_experiments.E7_write_efficiency.compute ~quick:true ()));
    make_test "e8_canonical" (fun () ->
        ignore (Tbwf_experiments.E8_canonical.compute ~quick:true ()));
    make_test "e9_flicker" (fun () ->
        ignore (Tbwf_experiments.E9_flicker.compute ~quick:true ()));
    make_test "e11_ablations" (fun () ->
        ignore (Tbwf_experiments.E11_ablations.compute ~quick:true ()));
    make_test "e12_routes" (fun () ->
        ignore (Tbwf_experiments.E12_routes.compute ~quick:true ()));
    make_test "e13_detectors" (fun () ->
        ignore (Tbwf_experiments.E13_detectors.compute ~quick:true ()));
    make_test "e14_gst" (fun () ->
        ignore (Tbwf_experiments.E14_gst.compute ~quick:true ()));
  ]

(* One Test.make per stack layer (20k simulated steps each). *)
let layer_tests =
  List.map
    (fun (name, thunk) -> Test.make ~name (Staged.stage thunk))
    Tbwf_experiments.E10_throughput.runners

let benchmark tests =
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~stabilize:false ()
  in
  Benchmark.all cfg instances
    (Test.make_grouped ~name:"tbwf" ~fmt:"%s/%s" tests)

let report raw =
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name result acc ->
        let nanos =
          match Analyze.OLS.estimates result with
          | Some (est :: _) -> est
          | Some [] | None -> nan
        in
        (name, nanos) :: acc)
      results []
    |> List.sort compare
  in
  Fmt.pr "@.%-45s %15s@." "benchmark" "time/run";
  Fmt.pr "%s@." (String.make 61 '-');
  List.iter
    (fun (name, nanos) ->
      let pretty =
        if Float.is_nan nanos then "n/a"
        else if nanos > 1e9 then Fmt.str "%8.2f s " (nanos /. 1e9)
        else if nanos > 1e6 then Fmt.str "%8.2f ms" (nanos /. 1e6)
        else if nanos > 1e3 then Fmt.str "%8.2f us" (nanos /. 1e3)
        else Fmt.str "%8.0f ns" nanos
      in
      Fmt.pr "%-45s %15s@." name pretty)
    rows

(* --- part 3: machine-readable run (--json) ------------------------------- *)

let drop_fmt =
  Format.make_formatter (fun _ _ _ -> ()) (fun () -> ())

let run_json () =
  let open Tbwf_telemetry in
  (* Per-experiment wall time; table output is discarded. *)
  let experiments =
    List.map
      (fun entry ->
        let start = Unix.gettimeofday () in
        entry.Tbwf_experiments.Registry.run ~quick drop_fmt;
        let seconds = Unix.gettimeofday () -. start in
        Fmt.pr "%-4s %6.2fs@." entry.Tbwf_experiments.Registry.id seconds;
        Json.Obj
          [
            "id", Json.Str entry.Tbwf_experiments.Registry.id;
            "title", Json.Str entry.Tbwf_experiments.Registry.title;
            "seconds", Json.Float seconds;
          ])
      Tbwf_experiments.Registry.all
  in
  (* Per-layer step throughput, including the telemetry overhead pair. *)
  let throughput = Tbwf_experiments.E10_throughput.compute ~quick () in
  let rows = throughput.Tbwf_experiments.E10_throughput.rows in
  let row_json r =
    let open Tbwf_experiments.E10_throughput in
    Json.Obj
      [
        "layer", Json.Str r.layer;
        "steps", Json.Int r.steps;
        "seconds", Json.Float r.seconds;
        "steps_per_sec", Json.Float r.steps_per_sec;
      ]
  in
  let rate layer =
    List.find_map
      (fun r ->
        let open Tbwf_experiments.E10_throughput in
        if String.equal r.layer layer then Some r.steps_per_sec else None)
      rows
  in
  let overhead =
    match rate "full TBWF op (election + QA)",
          rate "full TBWF op + live telemetry" with
    | Some nil, Some live when live > 0.0 ->
      Json.Obj
        [
          "nil_sink_steps_per_sec", Json.Float nil;
          "collector_steps_per_sec", Json.Float live;
          "live_cost_ratio", Json.Float (nil /. live);
        ]
    | _ -> Json.Null
  in
  let date =
    let tm = Unix.localtime (Unix.time ()) in
    Fmt.str "%04d-%02d-%02d" (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1)
      tm.Unix.tm_mday
  in
  let doc =
    Json.Obj
      [
        "schema", Json.Str "tbwf-bench/v1";
        "date", Json.Str date;
        "mode", Json.Str (if quick then "quick" else "full");
        "experiments", Json.Arr experiments;
        "throughput", Json.Arr (List.map row_json rows);
        "telemetry_overhead", overhead;
      ]
  in
  let path = Fmt.str "BENCH_%s.json" date in
  let oc = open_out path in
  output_string oc (Json.to_string_pretty doc);
  close_out oc;
  Fmt.pr "wrote %s@." path

let run_all_parts () =
  run_tables ();
  if not skip_micro then begin
    Fmt.pr
      "@.############ bechamel micro-benchmarks (wall-clock per run) \
       ############@.";
    Fmt.pr "@.[layer costs: 20k simulated steps per run]@.";
    report (benchmark layer_tests);
    Fmt.pr "@.[experiment harness cost per full (quick) run]@.";
    report (benchmark experiment_tests)
  end

let () = if json_mode then run_json () else run_all_parts ()
