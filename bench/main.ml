(* Benchmark harness.

   Two parts:
   1. The evaluation tables — one per experiment E1..E10 (the reproduction
      of the paper's claims; see EXPERIMENTS.md). Pass --full for the
      full-size configurations (minutes), default is quick (seconds).
   2. Bechamel micro-benchmarks, one Test.make per experiment workload and
      one per stack layer, measuring wall-clock cost per execution. *)

open Bechamel
open Bechamel.Toolkit

let quick = not (Array.exists (String.equal "--full") Sys.argv)
let skip_micro = Array.exists (String.equal "--tables-only") Sys.argv

(* --- part 1: evaluation tables ------------------------------------------ *)

let run_tables () =
  Fmt.pr "############ TBWF evaluation tables (%s mode) ############@."
    (if quick then "quick" else "full");
  Tbwf_experiments.Registry.run_all ~quick Fmt.stdout

(* --- part 2: bechamel micro-benchmarks ---------------------------------- *)

(* One Test.make per experiment: each runs that experiment's (quick)
   workload once per measured execution. E1/E2 are the expensive sweeps, so
   they get a single-config variant to keep sampling fast. *)
let experiment_tests =
  let make_test name (thunk : unit -> unit) =
    Test.make ~name (Staged.stage thunk)
  in
  [
    make_test "e1_degradation_one_config" (fun () ->
        ignore (Tbwf_experiments.E1_degradation.compute ~quick:true ()));
    make_test "e2_baselines" (fun () ->
        ignore (Tbwf_experiments.E2_baselines.compute ~quick:true ()));
    make_test "e3_obstruction" (fun () ->
        ignore (Tbwf_experiments.E3_obstruction.compute ~quick:true ()));
    make_test "e4_omega_atomic" (fun () ->
        ignore (Tbwf_experiments.E4_omega_atomic.compute ~quick:true ()));
    make_test "e5_omega_abortable" (fun () ->
        ignore (Tbwf_experiments.E5_omega_abortable.compute ~quick:true ()));
    make_test "e6_monitor_matrix" (fun () ->
        ignore (Tbwf_experiments.E6_monitor_matrix.compute ~quick:true ()));
    make_test "e7_write_efficiency" (fun () ->
        ignore (Tbwf_experiments.E7_write_efficiency.compute ~quick:true ()));
    make_test "e8_canonical" (fun () ->
        ignore (Tbwf_experiments.E8_canonical.compute ~quick:true ()));
    make_test "e9_flicker" (fun () ->
        ignore (Tbwf_experiments.E9_flicker.compute ~quick:true ()));
    make_test "e11_ablations" (fun () ->
        ignore (Tbwf_experiments.E11_ablations.compute ~quick:true ()));
    make_test "e12_routes" (fun () ->
        ignore (Tbwf_experiments.E12_routes.compute ~quick:true ()));
    make_test "e13_detectors" (fun () ->
        ignore (Tbwf_experiments.E13_detectors.compute ~quick:true ()));
    make_test "e14_gst" (fun () ->
        ignore (Tbwf_experiments.E14_gst.compute ~quick:true ()));
  ]

(* One Test.make per stack layer (20k simulated steps each). *)
let layer_tests =
  List.map
    (fun (name, thunk) -> Test.make ~name (Staged.stage thunk))
    Tbwf_experiments.E10_throughput.runners

let benchmark tests =
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~stabilize:false ()
  in
  Benchmark.all cfg instances
    (Test.make_grouped ~name:"tbwf" ~fmt:"%s/%s" tests)

let report raw =
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name result acc ->
        let nanos =
          match Analyze.OLS.estimates result with
          | Some (est :: _) -> est
          | Some [] | None -> nan
        in
        (name, nanos) :: acc)
      results []
    |> List.sort compare
  in
  Fmt.pr "@.%-45s %15s@." "benchmark" "time/run";
  Fmt.pr "%s@." (String.make 61 '-');
  List.iter
    (fun (name, nanos) ->
      let pretty =
        if Float.is_nan nanos then "n/a"
        else if nanos > 1e9 then Fmt.str "%8.2f s " (nanos /. 1e9)
        else if nanos > 1e6 then Fmt.str "%8.2f ms" (nanos /. 1e6)
        else if nanos > 1e3 then Fmt.str "%8.2f us" (nanos /. 1e3)
        else Fmt.str "%8.0f ns" nanos
      in
      Fmt.pr "%-45s %15s@." name pretty)
    rows

let () =
  run_tables ();
  if not skip_micro then begin
    Fmt.pr
      "@.############ bechamel micro-benchmarks (wall-clock per run) \
       ############@.";
    Fmt.pr "@.[layer costs: 20k simulated steps per run]@.";
    report (benchmark layer_tests);
    Fmt.pr "@.[experiment harness cost per full (quick) run]@.";
    report (benchmark experiment_tests)
  end
