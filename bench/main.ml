(* Benchmark harness.

   Two parts:
   1. The evaluation tables — one per experiment E1..E10 (the reproduction
      of the paper's claims; see EXPERIMENTS.md). Pass --full for the
      full-size configurations (minutes), default is quick (seconds).
   2. Bechamel micro-benchmarks, one Test.make per experiment workload and
      one per stack layer, measuring wall-clock cost per execution.

   With --json the harness instead times every experiment and the
   per-layer throughput runs and writes the results to BENCH_<date>.json
   (machine-readable; includes the telemetry-overhead ratio between the
   nil-sink and collector-attached TBWF workloads, plus run provenance:
   git SHA, seed, quick/full mode and OCaml version). [--out FILE]
   overrides the output path; [--check-baseline FILE] additionally
   compares the measured per-layer steps/sec against a committed BENCH
   json and exits nonzero on a regression of more than 30%. *)

open Bechamel
open Bechamel.Toolkit

let quick = not (Array.exists (String.equal "--full") Sys.argv)
let skip_micro = Array.exists (String.equal "--tables-only") Sys.argv
let json_mode = Array.exists (String.equal "--json") Sys.argv

(* Value of [--flag VALUE], if present. *)
let arg_value flag =
  let rec go i =
    if i >= Array.length Sys.argv - 1 then None
    else if String.equal Sys.argv.(i) flag then Some Sys.argv.(i + 1)
    else go (i + 1)
  in
  go 1

let json_out = arg_value "--out"
let baseline_path = arg_value "--check-baseline"

let jobs =
  match Option.bind (arg_value "--jobs") int_of_string_opt with
  | Some j when j >= 1 -> j
  | Some _ | None -> Tbwf_parallel.Pool.default_domains ()

(* --- part 1: evaluation tables ------------------------------------------ *)

let run_tables () =
  Fmt.pr "############ TBWF evaluation tables (%s mode) ############@."
    (if quick then "quick" else "full");
  Tbwf_experiments.Registry.run_all ~quick Fmt.stdout

(* --- part 2: bechamel micro-benchmarks ---------------------------------- *)

(* One Test.make per experiment: each runs that experiment's (quick)
   workload once per measured execution. E1/E2 are the expensive sweeps, so
   they get a single-config variant to keep sampling fast. *)
let experiment_tests =
  let make_test name (thunk : unit -> unit) =
    Test.make ~name (Staged.stage thunk)
  in
  [
    make_test "e1_degradation_one_config" (fun () ->
        ignore (Tbwf_experiments.E1_degradation.compute ~quick:true ()));
    make_test "e2_baselines" (fun () ->
        ignore (Tbwf_experiments.E2_baselines.compute ~quick:true ()));
    make_test "e3_obstruction" (fun () ->
        ignore (Tbwf_experiments.E3_obstruction.compute ~quick:true ()));
    make_test "e4_omega_atomic" (fun () ->
        ignore (Tbwf_experiments.E4_omega_atomic.compute ~quick:true ()));
    make_test "e5_omega_abortable" (fun () ->
        ignore (Tbwf_experiments.E5_omega_abortable.compute ~quick:true ()));
    make_test "e6_monitor_matrix" (fun () ->
        ignore (Tbwf_experiments.E6_monitor_matrix.compute ~quick:true ()));
    make_test "e7_write_efficiency" (fun () ->
        ignore (Tbwf_experiments.E7_write_efficiency.compute ~quick:true ()));
    make_test "e8_canonical" (fun () ->
        ignore (Tbwf_experiments.E8_canonical.compute ~quick:true ()));
    make_test "e9_flicker" (fun () ->
        ignore (Tbwf_experiments.E9_flicker.compute ~quick:true ()));
    make_test "e11_ablations" (fun () ->
        ignore (Tbwf_experiments.E11_ablations.compute ~quick:true ()));
    make_test "e12_routes" (fun () ->
        ignore (Tbwf_experiments.E12_routes.compute ~quick:true ()));
    make_test "e13_detectors" (fun () ->
        ignore (Tbwf_experiments.E13_detectors.compute ~quick:true ()));
    make_test "e14_gst" (fun () ->
        ignore (Tbwf_experiments.E14_gst.compute ~quick:true ()));
  ]

(* One Test.make per stack layer (20k simulated steps each). *)
let layer_tests =
  List.map
    (fun (name, thunk) -> Test.make ~name (Staged.stage thunk))
    Tbwf_experiments.E10_throughput.runners

let benchmark tests =
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~stabilize:false ()
  in
  Benchmark.all cfg instances
    (Test.make_grouped ~name:"tbwf" ~fmt:"%s/%s" tests)

let report raw =
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name result acc ->
        let nanos =
          match Analyze.OLS.estimates result with
          | Some (est :: _) -> est
          | Some [] | None -> nan
        in
        (name, nanos) :: acc)
      results []
    |> List.sort compare
  in
  Fmt.pr "@.%-45s %15s@." "benchmark" "time/run";
  Fmt.pr "%s@." (String.make 61 '-');
  List.iter
    (fun (name, nanos) ->
      let pretty =
        if Float.is_nan nanos then "n/a"
        else if nanos > 1e9 then Fmt.str "%8.2f s " (nanos /. 1e9)
        else if nanos > 1e6 then Fmt.str "%8.2f ms" (nanos /. 1e6)
        else if nanos > 1e3 then Fmt.str "%8.2f us" (nanos /. 1e3)
        else Fmt.str "%8.0f ns" nanos
      in
      Fmt.pr "%-45s %15s@." name pretty)
    rows

(* --- part 3: machine-readable run (--json) ------------------------------- *)

let drop_fmt =
  Format.make_formatter (fun _ _ _ -> ()) (fun () -> ())

(* Run provenance: a BENCH file is only a trajectory point if it says
   which commit, mode, seed and compiler produced it. *)
let git_sha () =
  try
    let ic = Unix.open_process_in "git rev-parse HEAD 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> line
    | _ -> "unknown"
  with _ -> "unknown"

(* Compare the freshly measured per-layer throughput against a committed
   BENCH json: any layer running at less than [floor] of its baseline
   steps/sec is a regression. Layers only on one side are reported but
   never fail the check (renames should not brick CI). *)
let check_against_baseline ~path rows =
  let open Tbwf_telemetry in
  let read_file p =
    let ic = open_in p in
    let len = in_channel_length ic in
    let text = really_input_string ic len in
    close_in ic;
    text
  in
  let floor = 0.70 in
  match Json.of_string (read_file path) with
  | Error msg ->
    Fmt.epr "bad baseline %s: %s@." path msg;
    2
  | Ok doc ->
    let base_rates =
      match Json.member "throughput" doc with
      | Some (Json.Arr items) ->
        List.filter_map
          (fun row ->
            match
              Json.member "layer" row, Json.member "steps_per_sec" row
            with
            | Some (Json.Str layer), Some rate ->
              Option.map (fun r -> layer, r) (Json.to_float_opt rate)
            | _ -> None)
          items
      | _ -> []
    in
    if base_rates = [] then begin
      Fmt.epr "baseline %s carries no throughput rows@." path;
      2
    end
    else begin
      let regressions = ref [] in
      List.iter
        (fun r ->
          let open Tbwf_experiments.E10_throughput in
          match List.assoc_opt r.layer base_rates with
          | None -> Fmt.pr "%-40s (not in baseline)@." r.layer
          | Some base when base <= 0.0 -> ()
          | Some base ->
            let ratio = r.steps_per_sec /. base in
            Fmt.pr "%-40s %10.0f vs baseline %10.0f  (x%.2f)%s@." r.layer
              r.steps_per_sec base ratio
              (if ratio < floor then "  REGRESSION" else "");
            if ratio < floor then regressions := r.layer :: !regressions)
        rows;
      match !regressions with
      | [] ->
        Fmt.pr "throughput within %.0f%% of baseline %s@."
          ((1.0 -. floor) *. 100.0)
          path;
        0
      | layers ->
        Fmt.epr "steps/sec regression > %.0f%% vs %s in: %s@."
          ((1.0 -. floor) *. 100.0)
          path
          (String.concat ", " (List.rev layers));
        1
    end

let run_json () =
  let open Tbwf_telemetry in
  (* Per-experiment wall time; table output is discarded. *)
  let experiments =
    List.map
      (fun entry ->
        let start = Unix.gettimeofday () in
        entry.Tbwf_experiments.Registry.run ~quick drop_fmt;
        let seconds = Unix.gettimeofday () -. start in
        Fmt.pr "%-4s %6.2fs@." entry.Tbwf_experiments.Registry.id seconds;
        Json.Obj
          [
            "id", Json.Str entry.Tbwf_experiments.Registry.id;
            "title", Json.Str entry.Tbwf_experiments.Registry.title;
            "seconds", Json.Float seconds;
          ])
      Tbwf_experiments.Registry.all
  in
  (* Per-layer step throughput, including the telemetry overhead pair. *)
  let throughput = Tbwf_experiments.E10_throughput.compute ~quick () in
  (* The sharded world layer, timed end to end as one more throughput
     row: a whole [World.run] — open-loop clients, churn compiled onto
     per-shard fault plans, collectors folded in shard order — over the
     same total step budget as the single-cell layers. *)
  let world_config =
    let shards = 8 in
    let horizon = (if quick then 20_000 else 200_000) / shards in
    { Tbwf_world.World.default with Tbwf_world.World.shards; horizon }
  in
  let time_world ~domains =
    let pool =
      if domains <= 1 then None
      else Some (Tbwf_parallel.Pool.create ~domains ())
    in
    let start = Unix.gettimeofday () in
    let summary = Tbwf_world.World.run ?pool world_config in
    summary, Unix.gettimeofday () -. start
  in
  let world_summary, world_s1 = time_world ~domains:1 in
  let world_row =
    let steps = world_summary.Tbwf_world.World.sum_steps in
    {
      Tbwf_experiments.E10_throughput.layer = "sharded world (open-loop + churn)";
      steps;
      seconds = world_s1;
      steps_per_sec =
        (if world_s1 > 0.0 then float_of_int steps /. world_s1 else 0.0);
    }
  in
  let rows =
    throughput.Tbwf_experiments.E10_throughput.rows @ [ world_row ]
  in
  let row_json r =
    let open Tbwf_experiments.E10_throughput in
    Json.Obj
      [
        "layer", Json.Str r.layer;
        "steps", Json.Int r.steps;
        "seconds", Json.Float r.seconds;
        "steps_per_sec", Json.Float r.steps_per_sec;
      ]
  in
  let rate layer =
    List.find_map
      (fun r ->
        let open Tbwf_experiments.E10_throughput in
        if String.equal r.layer layer then Some r.steps_per_sec else None)
      rows
  in
  (* Reference-vs-compiled backend on the identical full-TBWF stack: the
     ratio is the compiled backend's speedup (same trace, different
     execution engine). *)
  let backend_speedup =
    match rate "full TBWF op (election + QA)",
          rate "full TBWF op (compiled backend)" with
    | Some reference, Some compiled when reference > 0.0 ->
      let speedup = compiled /. reference in
      Fmt.pr "backend-speedup: compiled x%.2f vs reference on full TBWF@."
        speedup;
      Json.Obj
        [
          "reference_steps_per_sec", Json.Float reference;
          "compiled_steps_per_sec", Json.Float compiled;
          "speedup", Json.Float speedup;
        ]
    | _ -> Json.Null
  in
  let overhead =
    match rate "full TBWF op (election + QA)",
          rate "full TBWF op + live telemetry" with
    | Some nil, Some live when live > 0.0 ->
      Json.Obj
        [
          "nil_sink_steps_per_sec", Json.Float nil;
          "collector_steps_per_sec", Json.Float live;
          "live_cost_ratio", Json.Float (nil /. live);
        ]
    | _ -> Json.Null
  in
  (* The tbwf_soak configuration — collector + tail monitor + online
     degradation checker + v2 stream records — against the nil sink: the
     cost of watching a run (and judging it) while it executes. *)
  let streaming_overhead =
    match rate "full TBWF op (election + QA)",
          rate "full TBWF op + streaming telemetry" with
    | Some nil, Some stream when stream > 0.0 ->
      Json.Obj
        [
          "nil_sink_steps_per_sec", Json.Float nil;
          "streaming_steps_per_sec", Json.Float stream;
          "stream_cost_ratio", Json.Float (nil /. stream);
        ]
    | _ -> Json.Null
  in
  (* Shared memory vs the ABD quorum emulation on the identical client
     workload: the per-step cost ratio of making register timeliness
     emergent rather than assumed. *)
  let substrate_overhead =
    match rate "full TBWF op (election + QA)",
          rate "full TBWF op (message-passing substrate)" with
    | Some shared, Some mp when mp > 0.0 ->
      Json.Obj
        [
          "shared_memory_steps_per_sec", Json.Float shared;
          "message_passing_steps_per_sec", Json.Float mp;
          "step_cost_ratio", Json.Float (shared /. mp);
        ]
    | _ -> Json.Null
  in
  (* Parallel fan-out: the same quick campaign matrix timed at one domain
     and at --jobs domains. The outputs are byte-identical by the pool's
     determinism contract; only the wall clock moves. *)
  let parallel_fanout =
    let time_matrix ~domains =
      let pool = Tbwf_parallel.Pool.create ~domains () in
      let start = Unix.gettimeofday () in
      let m = Tbwf_nemesis.Campaign.run_matrix ~pool ~quick:true () in
      m.Tbwf_nemesis.Campaign.m_ok, Unix.gettimeofday () -. start
    in
    let ok1, s1 = time_matrix ~domains:1 in
    let okn, sn = time_matrix ~domains:jobs in
    let speedup = if sn > 0.0 then s1 /. sn else 0.0 in
    Fmt.pr "parallel-fanout: campaign matrix %.2fs at 1 job, %.2fs at %d \
            jobs (x%.2f)@."
      s1 sn jobs speedup;
    Json.Obj
      [
        "workload", Json.Str "campaign-matrix-quick";
        "jobs", Json.Int jobs;
        "ok", Json.Bool (ok1 && okn);
        "seconds_jobs_1", Json.Float s1;
        "seconds_jobs_n", Json.Float sn;
        "speedup", Json.Float speedup;
      ]
  in
  (* The world layer's own record: scale facts the flat throughput row
     cannot carry (process count, shard fan-out, ops rate, per-domain
     speedup). The stdout artifact is byte-identical at any domain
     count, so only the wall clock distinguishes the two timings. *)
  let world =
    let open Tbwf_world in
    let _, sn = time_world ~domains:jobs in
    let speedup = if sn > 0.0 then world_s1 /. sn else 0.0 in
    let steps = world_summary.World.sum_steps in
    Fmt.pr
      "world: %d shards (%d processes) %.2fs at 1 job, %.2fs at %d jobs \
       (x%.2f)@."
      world_config.World.shards
      (world_config.World.shards * world_config.World.n)
      world_s1 sn jobs speedup;
    Json.Obj
      [
        "shards", Json.Int world_config.World.shards;
        "n", Json.Int world_config.World.n;
        "total_processes",
        Json.Int (world_config.World.shards * world_config.World.n);
        "steps", Json.Int steps;
        "ops_completed", Json.Int world_summary.World.sum_completed;
        "steps_per_sec",
        Json.Float
          (if world_s1 > 0.0 then float_of_int steps /. world_s1 else 0.0);
        "ops_per_sec",
        Json.Float
          (if world_s1 > 0.0 then
             float_of_int world_summary.World.sum_completed /. world_s1
           else 0.0);
        "all_hold", Json.Bool world_summary.World.sum_all_hold;
        "jobs", Json.Int jobs;
        "seconds_jobs_1", Json.Float world_s1;
        "seconds_jobs_n", Json.Float sn;
        "speedup", Json.Float speedup;
      ]
  in
  let date =
    let tm = Unix.localtime (Unix.time ()) in
    Fmt.str "%04d-%02d-%02d" (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1)
      tm.Unix.tm_mday
  in
  let doc =
    Json.Obj
      [
        "schema", Json.Str "tbwf-bench/v2";
        "date", Json.Str date;
        "git_sha", Json.Str (git_sha ());
        "ocaml_version", Json.Str Sys.ocaml_version;
        "seed",
        Json.Int (Int64.to_int Tbwf_experiments.E10_throughput.base_seed);
        "mode", Json.Str (if quick then "quick" else "full");
        "experiments", Json.Arr experiments;
        "throughput", Json.Arr (List.map row_json rows);
        "backend_speedup", backend_speedup;
        "telemetry_overhead", overhead;
        "streaming_overhead", streaming_overhead;
        "substrate_overhead", substrate_overhead;
        "parallel_fanout", parallel_fanout;
        "world", world;
      ]
  in
  let path =
    match json_out with
    | Some p -> p
    | None -> Fmt.str "BENCH_%s.json" date
  in
  let oc = open_out path in
  output_string oc (Json.to_string_pretty doc);
  close_out oc;
  Fmt.pr "wrote %s@." path;
  match baseline_path with
  | None -> 0
  | Some baseline -> check_against_baseline ~path:baseline rows

let run_all_parts () =
  run_tables ();
  if not skip_micro then begin
    Fmt.pr
      "@.############ bechamel micro-benchmarks (wall-clock per run) \
       ############@.";
    Fmt.pr "@.[layer costs: 20k simulated steps per run]@.";
    report (benchmark layer_tests);
    Fmt.pr "@.[experiment harness cost per full (quick) run]@.";
    report (benchmark experiment_tests)
  end

let () = if json_mode then exit (run_json ()) else run_all_parts ()
