(* Interactive scenario runner: build a TBWF stack with the given
   parameters, run it, and print a progress report. *)

open Cmdliner
open Tbwf_sim
open Tbwf_registers
open Tbwf_objects
open Tbwf_core
open Tbwf_experiments

let spec_of_object = function
  | "counter" -> Counter.spec, Counter.inc
  | "stack" -> Stack_obj.spec, Stack_obj.push (Value.Int 1)
  | "queue" -> Queue_obj.spec, Queue_obj.enqueue (Value.Int 1)
  | "set" -> Set_obj.spec, Set_obj.add 7
  | "kv" -> Kv_store.spec, Kv_store.put "key" (Value.Int 1)
  | "deque" -> Deque_obj.spec, Deque_obj.push_right (Value.Int 1)
  | other ->
    Fmt.failwith "unknown object %S (counter|stack|queue|set|kv|deque)" other

let omega_of_string = function
  | "atomic" -> Scenario.Omega_atomic
  | "abortable" -> Scenario.Omega_abortable Abort_policy.Always
  | "naive" -> Scenario.Omega_naive
  | other -> Fmt.failwith "unknown omega %S (atomic|abortable|naive)" other

let run n steps seed object_name omega_name untimely non_canonical =
  let spec, op = spec_of_object object_name in
  let omega = omega_of_string omega_name in
  let untimely = List.filter (fun p -> p >= 0 && p < n) untimely in
  let timely = List.filter (fun p -> not (List.mem p untimely)) (List.init n Fun.id) in
  (* One registry stack per omega choice; the demo only varies the elector,
     never the QA construction. *)
  let stack =
    Scenario.build ~seed:(Int64.of_int seed) ~canonical:(not non_canonical) ~n
      ~omega ~spec
      ~next_op:(Workload.forever op)
      ~client_pids:(List.init n Fun.id) ()
  in
  let policy = Scenario.degraded_policy ~n ~timely () in
  Runtime.run stack.Scenario.rt ~policy ~steps:(steps / 2);
  let mid = Progress.snapshot stack.Scenario.stats in
  Runtime.run stack.Scenario.rt ~policy ~steps:(steps / 2);
  let trace = Runtime.trace stack.Scenario.rt in
  let reports =
    Progress.reports trace ~n ~stats:stack.Scenario.stats
      ~from_step:(Runtime.now stack.Scenario.rt / 2)
      ~bound:(4 * n)
  in
  Fmt.pr "TBWF %s over Ω∆(%a), n=%d, %d steps, untimely=%a@." spec.Seq_spec.name
    Scenario.pp_omega_impl omega n steps
    Fmt.(Dump.list int)
    untimely;
  List.iter (fun r -> Fmt.pr "  %a@." Progress.pp_report r) reports;
  Fmt.pr "final object state: %a@." Value.pp (stack.Scenario.qa.Qa_intf.peek_state ());
  Fmt.pr "TBWF holds (timely kept progressing): %b@."
    (Progress.tbwf_holds_endless ~before:mid ~after:stack.Scenario.stats ~timely);
  Runtime.stop stack.Scenario.rt

let n =
  Arg.(value & opt int 4 & info [ "n" ] ~doc:"Number of processes.")

let steps =
  Arg.(value & opt int 200_000 & info [ "steps" ] ~doc:"Total steps to run.")

let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.")

let object_name =
  Arg.(
    value & opt string "counter"
    & info [ "object" ] ~doc:"Shared object type: counter|stack|queue|set|kv|deque.")

let omega_name =
  Arg.(
    value & opt string "atomic"
    & info [ "omega" ] ~doc:"Leader elector: atomic|abortable|naive.")

let untimely =
  Arg.(
    value & opt (list int) []
    & info [ "untimely" ] ~doc:"Pids scheduled with ever-growing step gaps.")

let non_canonical =
  Arg.(
    value & flag
    & info [ "non-canonical" ]
        ~doc:"Drop Figure 7's line-2 wait (demonstrates monopolization).")

let cmd =
  let doc = "run one TBWF scenario and report per-process progress" in
  Cmd.v
    (Cmd.info "tbwf_demo" ~doc)
    Term.(
      const run $ n $ steps $ seed $ object_name $ omega_name $ untimely
      $ non_canonical)

let () = exit (Cmd.eval cmd)
