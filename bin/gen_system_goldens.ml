(* Regenerates test/golden/system_fingerprints.txt: per-system trace
   fingerprints under representative schedules, built through the System
   registry. The committed goldens were captured from the pre-registry
   wiring, so this generator doubles as the refactor-equivalence proof —
   its output must match the file byte for byte.

   Usage: dune exec bin/gen_system_goldens.exe > test/golden/system_fingerprints.txt *)

open Tbwf_sim
open Tbwf_experiments
open Tbwf_system

let n = 3
let steps = 4_000
let seed = 0x53595354L (* "SYST" *)

let policies =
  [
    "round-robin", (fun () -> Policy.round_robin ());
    "degraded", (fun () -> Scenario.degraded_policy ~n ~timely:[ 1; 2 ] ());
  ]

let () =
  List.iter
    (fun id ->
      List.iter
        (fun (pname, pol) ->
          let stack = System.build ~seed ~n id in
          let rt = stack.System.rt in
          Runtime.run rt ~policy:(pol ()) ~steps;
          Runtime.stop rt;
          let digest =
            Digest.to_hex (Digest.string (Trace.fingerprint (Runtime.trace rt)))
          in
          Fmt.pr "%s %s %s@." (System.to_string id) pname digest)
        policies)
    System.all
