(* Regenerates test/golden/system_fingerprints.txt: per-system trace
   fingerprints under representative schedules, built through the System
   registry. The committed goldens were captured from the pre-registry
   wiring, so this generator doubles as the refactor-equivalence proof —
   its output must match the file byte for byte.

   Usage: dune exec bin/gen_system_goldens.exe > test/golden/system_fingerprints.txt

   `--backend compiled` regenerates through the compiled backend; the
   output must be identical (the backends' byte-equality contract), so
   piping both through `diff` is a one-line differential check. *)

open Tbwf_sim
open Tbwf_experiments
open Tbwf_system

let n = 3
let steps = 4_000
let seed = 0x53595354L (* "SYST" *)

let policies =
  [
    "round-robin", (fun () -> Policy.round_robin ());
    "degraded", (fun () -> Scenario.degraded_policy ~n ~timely:[ 1; 2 ] ());
  ]

let backend =
  match Array.to_list Sys.argv with
  | [ _ ] -> Backend.Reference
  | [ _; "--backend"; name ] -> (
    match Backend.of_string name with
    | Ok b -> b
    | Error msg ->
      prerr_endline msg;
      exit 2)
  | _ ->
    prerr_endline "usage: gen_system_goldens [--backend reference|compiled]";
    exit 2

let () =
  List.iter
    (fun id ->
      List.iter
        (fun (pname, pol) ->
          let stack = System.build ~backend ~seed ~n id in
          let rt = stack.System.rt in
          Runtime.run rt ~policy:(pol ()) ~steps;
          Runtime.stop rt;
          let digest =
            Digest.to_hex (Digest.string (Trace.fingerprint (Runtime.trace rt)))
          in
          Fmt.pr "%s %s %s@." (System.to_string id) pname digest)
        policies)
    System.all
