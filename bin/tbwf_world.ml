(* World CLI: many independent cells under open-loop traffic with client
   churn — the sharded front-end over lib/world.

   Output contract, same shape as tbwf_soak: stdout carries the
   deterministic artifact — every shard's JSONL stream in shard order
   (when --every is given), then one tbwf-world/v1 aggregate record —
   and is byte-identical for any --jobs value. Wall-clock throughput,
   per-shard timings and peak-RSS diagnostics go to stderr only.

   Memory is bounded by construction: lib/world folds each shard's
   collector into a running merge and drops it, so a
   half-million-process world (e.g. --shards 65536 --n 8) runs in the
   footprint of one in-flight batch. *)

open Cmdliner
open Tbwf_check
open Tbwf_telemetry
module System = Tbwf_system.System
module World = Tbwf_world.World

let substrate_of = function
  | `Shared_memory -> System.Shared_memory
  | `Message_passing -> System.Message_passing Tbwf_net.Net.default_config

let world shards n joiners leavers retire_fraction steps every window retain
    mean_gap keys zipf substrate system seed jobs =
  let systems =
    match system with
    | None -> System.paper_systems
    | Some name -> (
      match System.of_string name with
      | Ok sys -> [ sys ]
      | Error msg ->
        Fmt.epr "--system: %s@." msg;
        exit 2)
  in
  let config =
    {
      World.shards;
      n;
      joiners;
      leavers;
      retire_fraction;
      horizon = steps;
      every;
      window;
      retain = Some retain;
      systems;
      substrate = substrate_of substrate;
      profile = { Tbwf_core.Workload.Open_loop.mean_gap; keys; zipf };
      seed = Int64.of_int seed;
    }
  in
  match World.validate config with
  | exception Invalid_argument msg ->
    Fmt.epr "%s@." msg;
    2
  | () ->
    let pool = Tbwf_parallel.Pool.create ~domains:jobs () in
    let start = Unix.gettimeofday () in
    (* Per-shard stderr lines are only worth reading at small scale; a
       big world gets a progress line per thousand shards instead. *)
    let chatty = shards <= 64 in
    let done_shards = ref 0 in
    let on_shard (r : World.shard_result) =
      print_string r.World.ws_jsonl;
      incr done_shards;
      if chatty then
        Fmt.epr "shard %4d %-16s %s joins=%d leaves=%d ops=%d %6.2fs@."
          r.World.ws_shard
          (System.to_string r.World.ws_system)
          (if r.World.ws_verdict.Degradation.holds then "holds" else "fails")
          (List.length r.World.ws_churn.World.ch_joins)
          (List.length r.World.ws_churn.World.ch_leaves)
          r.World.ws_completed r.World.ws_seconds
      else if !done_shards mod 1024 = 0 then
        Fmt.epr "world %6d/%d shards %7.1fs%s@." !done_shards shards
          (Unix.gettimeofday () -. start)
          (match Resource.peak_rss_kb () with
          | Some kb -> Fmt.str " peak-rss %d kB" kb
          | None -> "")
    in
    let summary = World.run ~pool ~on_shard config in
    let wall = Unix.gettimeofday () -. start in
    print_string (Json.to_string summary.World.sum_json);
    print_newline ();
    Fmt.epr
      "%d shards x %d procs (%d total) x %d steps in %.2fs wall (%.0f \
       steps/s, %.0f ops/s)%s@."
      shards n (shards * n) steps wall
      (float_of_int summary.World.sum_steps /. wall)
      (float_of_int summary.World.sum_completed /. wall)
      (match Resource.peak_rss_kb () with
      | Some kb -> Fmt.str ", peak-rss %d kB" kb
      | None -> "");
    if summary.World.sum_all_hold then 0 else 1

(* --- cmdliner wiring ------------------------------------------------------ *)

let shards_arg =
  Arg.(value & opt int 8
       & info [ "shards" ] ~docv:"N"
           ~doc:"Independent cells; shard i runs system (i mod |systems|) \
                 with seed task_seed(master, i).")

let n_arg =
  Arg.(value & opt int 4
       & info [ "n" ] ~docv:"N"
           ~doc:"Processes per cell (the cell's capacity).")

let joiners_arg =
  Arg.(value & opt int 1
       & info [ "joiners" ] ~docv:"N"
           ~doc:"Processes per cell that join mid-run (the top pids; \
                 their clients activate at a drawn step).")

let leavers_arg =
  Arg.(value & opt int 1
       & info [ "leavers" ] ~docv:"N"
           ~doc:"Initially-active processes per cell that leave mid-run \
                 (retire or crash); pid 0 always stays.")

let retire_fraction_arg =
  Arg.(value & opt float 0.5
       & info [ "retire-fraction" ] ~docv:"P"
           ~doc:"Probability a leaver retires gracefully rather than \
                 crashing.")

let steps_arg =
  Arg.(value & opt int 24_000
       & info [ "steps" ] ~docv:"STEPS" ~doc:"Horizon per shard, in steps.")

let every_arg =
  Arg.(value & opt (some int) None
       & info [ "every" ] ~docv:"STEPS"
           ~doc:"Per-shard streaming snapshot cadence; omit to stream \
                 nothing (the aggregate record is always emitted).")

let window_arg =
  Arg.(value & opt int 1024
       & info [ "window" ] ~docv:"STEPS"
           ~doc:"Telemetry rate-series window, in steps.")

let retain_arg =
  Arg.(value & opt int 64
       & info [ "retain" ] ~docv:"WINDOWS"
           ~doc:"Rate-series windows kept live per shard — the per-shard \
                 memory bound.")

let mean_gap_arg =
  Arg.(value & opt float 600.0
       & info [ "mean-gap" ] ~docv:"STEPS"
           ~doc:"Mean open-loop inter-arrival gap, in steps.")

let keys_arg =
  Arg.(value & opt int 64
       & info [ "keys" ] ~docv:"N" ~doc:"Zipf key universe size per cell.")

let zipf_arg =
  Arg.(value & opt float 1.1
       & info [ "zipf" ] ~docv:"S"
           ~doc:"Zipf popularity exponent; 0 is uniform.")

let substrate_arg =
  Arg.(value
       & opt
           (enum
              [
                "shared-memory", `Shared_memory;
                "message-passing", `Message_passing;
              ])
           `Shared_memory
       & info [ "substrate" ] ~docv:"KIND"
           ~doc:"Register substrate per cell: shared-memory or \
                 message-passing (quorum emulation over the default \
                 network).")

let system_arg =
  Arg.(value & opt (some string) None
       & info [ "system" ] ~docv:"NAME"
           ~doc:"Run every shard on one system instead of cycling the \
                 paper systems.")

let seed_arg =
  Arg.(value & opt int 0x574C
       & info [ "seed" ] ~docv:"SEED" ~doc:"Master seed.")

let jobs_arg =
  Arg.(value & opt int (Tbwf_parallel.Pool.default_domains ())
       & info [ "jobs"; "j" ] ~docv:"N"
           ~doc:"Domains to fan shards out over (stdout is byte-identical \
                 for any value; 1 disables domains).")

let cmd =
  let doc =
    "sharded world runs: many independent cells under open-loop \
     Poisson/Zipf traffic with mid-run client churn (joins, graceful \
     retires, crashes), aggregated into one tbwf-world/v1 record at \
     bounded memory"
  in
  Cmd.v (Cmd.info "tbwf_world" ~doc)
    Term.(
      const world $ shards_arg $ n_arg $ joiners_arg $ leavers_arg
      $ retire_fraction_arg $ steps_arg $ every_arg $ window_arg $ retain_arg
      $ mean_gap_arg $ keys_arg $ zipf_arg $ substrate_arg $ system_arg
      $ seed_arg $ jobs_arg)

let () = exit (Cmd.eval' cmd)
