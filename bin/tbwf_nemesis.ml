(* Nemesis CLI: run named fault-injection campaigns against the paper's
   algorithms and the baselines, fuzz (schedule, fault-plan) pairs, and
   replay serialized counterexamples. Fault plans round-trip through the
   tbwf-plan text format, so a failing plan can be committed and replayed
   as a regression test, exactly like schedules in tbwf_explore. *)

open Cmdliner
open Tbwf_nemesis

let fmt = Fmt.stdout

let read_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  text

let write_file path text =
  let oc = open_out path in
  output_string oc text;
  close_out oc

let list_campaigns () =
  List.iter
    (fun c ->
      Fmt.pf fmt "%-12s [%s] %s@." (Campaign.name c) (Campaign.headline_atom c)
        (Campaign.summary c))
    Campaign.catalogue;
  Fmt.flush fmt ();
  0

let list_systems () =
  Fmt.pf fmt "%a@." Tbwf_system.System.pp_registry ();
  Fmt.flush fmt ();
  0

let with_campaign name k =
  match Campaign.find name with
  | Some c -> k c
  | None ->
    Fmt.epr "unknown campaign %S (try: tbwf_nemesis list)@." name;
    2

let pool_of jobs = Tbwf_parallel.Pool.create ~domains:jobs ()

let report_outcome o =
  Fmt.pf fmt "@[<v>%a@]@." Campaign.pp_outcome o;
  Fmt.flush fmt ();
  if o.Campaign.o_ok then 0 else 1

let with_backend name k =
  match Tbwf_sim.Backend.of_string name with
  | Ok backend -> k backend
  | Error msg ->
    Fmt.epr "%s@." msg;
    2

let with_substrate name k =
  match name with
  | "shared-memory" -> k Tbwf_system.System.Shared_memory
  | "message-passing" ->
    k (Tbwf_system.System.Message_passing Tbwf_net.Net.default_config)
  | s ->
    Fmt.epr "unknown substrate %S (known: shared-memory, message-passing)@." s;
    2

(* Both knobs exist on every subcommand, but the one combination with no
   implementation — compiled machines have no quorum emulation — is
   rejected up front with the same story System.build would tell. *)
let with_backend_substrate backend substrate k =
  with_backend backend @@ fun backend ->
  with_substrate substrate @@ fun substrate ->
  match backend, substrate with
  | Tbwf_sim.Backend.Compiled, Tbwf_system.System.Message_passing _ ->
    Fmt.epr
      "the compiled backend requires the shared-memory substrate (use \
       --backend reference with --substrate message-passing)@.";
    2
  | _, _ -> k backend substrate

let run_campaign backend substrate name full seed jobs =
  with_backend_substrate backend substrate @@ fun backend substrate ->
  with_campaign name @@ fun c ->
  report_outcome
    (Campaign.run ~backend ~substrate ~quick:(not full)
       ~seed:(Int64.of_int seed) ~pool:(pool_of jobs) c)

let matrix backend substrate full seed jobs =
  with_backend_substrate backend substrate @@ fun backend substrate ->
  let m =
    Campaign.run_matrix ~backend ~substrate ~pool:(pool_of jobs)
      ~quick:(not full) ~seed:(Int64.of_int seed) ()
  in
  (* Self-describing dimensions header: the substrate cost factor scales
     the horizons *and* divides the tail-rate floor, so a matrix reader
     can audit every cell's floor without consulting the source. On
     shared memory the factor is 1 and the line still says so. *)
  let n, horizon =
    Campaign.substrate_dimensions ~substrate ~quick:(not full) ()
  in
  let factor =
    match substrate with
    | Tbwf_system.System.Shared_memory -> 1
    | Tbwf_system.System.Message_passing _ -> Campaign.net_cost_factor
  in
  Fmt.pf fmt
    "dimensions   n=%d horizon=%d net-cost-factor=%d (horizon x%d, \
     tail-rate floor /%d)@."
    n horizon factor factor factor;
  (* campaign × system grid of degradation verdicts *)
  Fmt.pf fmt "%-12s" "";
  List.iter
    (fun s -> Fmt.pf fmt " %-16s" (Campaign.system_name s))
    Campaign.all_systems;
  Fmt.pf fmt "@.";
  List.iter
    (fun o ->
      Fmt.pf fmt "%-12s" (Campaign.name o.Campaign.o_campaign);
      List.iter
        (fun r ->
          let v = r.Campaign.row_result.Campaign.rr_verdict in
          Fmt.pf fmt " %-16s"
            (Fmt.str "%s%s"
               (if v.Tbwf_check.Degradation.holds then "holds" else "fails")
               (if r.Campaign.row_as_expected then "" else " [!]")))
        o.Campaign.o_rows;
      Fmt.pf fmt "@.")
    m.Campaign.m_outcomes;
  (* Per-cell wall times go to stderr: stdout is the deterministic
     artifact (goldens diff it), timing is diagnostics. *)
  List.iter
    (fun o ->
      List.iter
        (fun r ->
          Fmt.epr "cell %-12s %-16s %6.2fs@."
            (Campaign.name o.Campaign.o_campaign)
            (Campaign.system_name r.Campaign.row_system)
            r.Campaign.row_result.Campaign.rr_seconds)
        o.Campaign.o_rows)
    m.Campaign.m_outcomes;
  Fmt.pf fmt "@.matrix %s@."
    (if m.Campaign.m_ok then "as predicted"
     else "NOT as predicted ([!] rows differ)");
  Fmt.pf fmt "@,aggregate telemetry (all cells):@.%a@."
    Tbwf_telemetry.Collector.pp_summary m.Campaign.m_telemetry;
  Fmt.flush fmt ();
  if m.Campaign.m_ok then 0 else 1

let fuzz substrate seed runs horizon plan_out sched_out jobs =
  with_substrate substrate @@ fun substrate ->
  let outcome =
    Plan_fuzz.demo ~seed:(Int64.of_int seed) ~runs ~pool:(pool_of jobs)
      ~substrate ~horizon ()
  in
  let open Tbwf_check.Explore in
  Fmt.pf fmt "runs          %d@." outcome.plan_runs;
  match outcome.plan_counterexample with
  | None ->
    Fmt.pf fmt "counterexample none@.";
    Fmt.flush fmt ();
    1
  | Some (pids, plan) ->
    Fmt.pf fmt "witness len   %d (shrunk from %d), plan atoms %d@."
      (List.length pids)
      (Option.value outcome.plan_shrunk_from ~default:(List.length pids))
      (List.length (Fault_plan.atoms plan));
    Fmt.pf fmt "plan:@.%s" (Fault_plan.to_string plan);
    (* The round-trip guarantee: serialize the shrunk plan, parse it back,
       and check the replay is byte-identical to the direct one. *)
    let text = Fault_plan.to_string plan in
    (match Fault_plan.of_string text with
    | Error msg ->
      Fmt.epr "serialized plan failed to parse: %s@." msg;
      2
    | Ok plan' ->
      let held1, fp1 = Plan_fuzz.demo_replay ~substrate plan pids in
      let held2, fp2 = Plan_fuzz.demo_replay ~substrate plan' pids in
      Fmt.pf fmt "replay        invariant %s@."
        (if held1 then "held (UNEXPECTED)" else "violated (as found)");
      Fmt.pf fmt "round-trip    %s@."
        (if (not held2) && String.equal fp1 fp2 then
           "byte-identical replay from serialized plan"
         else "MISMATCH");
      (match plan_out with
      | Some path ->
        write_file path text;
        Fmt.pf fmt "plan written to %s@." path
      | None -> ());
      (match sched_out with
      | Some path ->
        let sched =
          Tbwf_sim.Schedule.make
            ~n:(Plan_fuzz.demo_pid_count ~substrate plan')
            pids
        in
        write_file path (Tbwf_sim.Schedule.to_string sched);
        Fmt.pf fmt "schedule written to %s@." path
      | None -> ());
      Fmt.flush fmt ();
      if (not held1) && (not held2) && String.equal fp1 fp2 then 0 else 1)

let replay substrate plan_file sched_file expect_violation =
  with_substrate substrate @@ fun substrate ->
  match Fault_plan.of_string (read_file plan_file) with
  | Error msg ->
    Fmt.epr "bad plan file %s: %s@." plan_file msg;
    2
  | Ok plan ->
    let pids_result =
      match sched_file with
      | None -> Ok []
      | Some f ->
        Result.map Tbwf_sim.Schedule.pids
          (Tbwf_sim.Schedule.of_string (read_file f))
    in
    (match pids_result with
    | Error msg ->
      Fmt.epr "bad schedule file: %s@." msg;
      2
    | Ok pids ->
      let held, _fp = Plan_fuzz.demo_replay ~substrate plan pids in
      Fmt.pf fmt "plan          %d atoms, n=%d, horizon=%d@."
        (List.length (Fault_plan.atoms plan))
        (Fault_plan.n plan) (Fault_plan.horizon plan);
      Fmt.pf fmt "schedule      %d steps@." (List.length pids);
      Fmt.pf fmt "invariant     %s@." (if held then "held" else "VIOLATED");
      Fmt.flush fmt ();
      if held <> not expect_violation then 1 else 0)

(* --- cmdliner wiring ----------------------------------------------------- *)

let campaign_arg =
  let doc = "Campaign name (see `tbwf_nemesis list')." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"CAMPAIGN" ~doc)

let full_arg =
  Arg.(value & flag
       & info [ "full" ]
           ~doc:"Full dimensions (n=6, 480k steps) instead of quick (n=4, \
                 96k steps).")

let seed_arg =
  Arg.(value & opt int 0x4E454D45
       & info [ "seed" ] ~docv:"SEED"
           ~doc:"Runtime seed (campaigns are deterministic per seed).")

let backend_arg =
  Arg.(value & opt string "reference"
       & info [ "backend" ] ~docv:"BACKEND"
           ~doc:"Execution backend: reference or compiled. Verdicts, \
                 matrices and telemetry are byte-identical either way.")

let substrate_arg =
  Arg.(value & opt string "shared-memory"
       & info [ "substrate" ] ~docv:"SUBSTRATE"
           ~doc:"Register substrate: shared-memory, or message-passing \
                 (ABD-style quorum emulation over the simulated network; \
                 reference backend only).")

let jobs_arg =
  Arg.(value & opt int (Tbwf_parallel.Pool.default_domains ())
       & info [ "jobs"; "j" ] ~docv:"N"
           ~doc:"Domains to fan independent runs out over (output is \
                 byte-identical for any value; 1 disables domains).")

let list_cmd =
  Cmd.v (Cmd.info "list" ~doc:"list the campaign catalogue")
    Term.(const list_campaigns $ const ())

let list_systems_cmd =
  Cmd.v
    (Cmd.info "list-systems"
       ~doc:"list the system registry: ids, descriptions and paper \
             references (the systems accepted by run/matrix and by \
             tbwf_trace --system)")
    Term.(const list_systems $ const ())

let run_cmd =
  Cmd.v
    (Cmd.info "run"
       ~doc:"run one campaign against every system; exit 0 iff every \
             verdict matches the campaign's prediction")
    Term.(
      const run_campaign $ backend_arg $ substrate_arg $ campaign_arg
      $ full_arg $ seed_arg $ jobs_arg)

let matrix_cmd =
  Cmd.v
    (Cmd.info "matrix"
       ~doc:"run the whole catalogue and print the campaign × system \
             degradation matrix")
    Term.(
      const matrix $ backend_arg $ substrate_arg $ full_arg $ seed_arg
      $ jobs_arg)

let fuzz_cmd =
  let seed =
    Arg.(value & opt int 0xF001 & info [ "seed" ] ~docv:"SEED"
           ~doc:"Fuzzer seed (fuzzing is deterministic per seed).")
  in
  let runs =
    Arg.(value & opt int 200 & info [ "runs" ] ~docv:"N"
           ~doc:"Random (schedule, plan) pairs to try.")
  in
  let horizon =
    Arg.(value & opt int 400 & info [ "horizon" ] ~docv:"STEPS"
           ~doc:"Step budget per fuzzed run.")
  in
  let plan_out =
    Arg.(value & opt (some string) None
         & info [ "plan-out" ] ~docv:"FILE"
             ~doc:"Write the shrunk counterexample plan to $(docv).")
  in
  let sched_out =
    Arg.(value & opt (some string) None
         & info [ "sched-out" ] ~docv:"FILE"
             ~doc:"Write the shrunk counterexample schedule to $(docv).")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"fuzz (schedule, fault-plan) pairs against the planted-bug \
             demo; shrinks both dimensions and checks the serialized plan \
             replays byte-identically")
    Term.(
      const fuzz $ substrate_arg $ seed $ runs $ horizon $ plan_out
      $ sched_out $ jobs_arg)

let replay_cmd =
  let plan_file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"PLAN"
           ~doc:"Fault-plan file in tbwf-plan format.")
  in
  let sched_file =
    Arg.(value & pos 1 (some file) None & info [] ~docv:"SCHED"
           ~doc:"Optional schedule file in tbwf-sched format.")
  in
  let expect_violation =
    Arg.(value & flag
         & info [ "expect-violation" ]
             ~doc:"Exit 0 iff the replay violates the invariant (for \
                   committed counterexamples).")
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"replay a serialized (plan, schedule) counterexample against \
             the demo scenario")
    Term.(const replay $ substrate_arg $ plan_file $ sched_file
          $ expect_violation)

let cmd =
  let doc = "fault-injection campaigns with graceful-degradation verdicts" in
  Cmd.group (Cmd.info "tbwf_nemesis" ~doc)
    [ list_cmd; list_systems_cmd; run_cmd; matrix_cmd; fuzz_cmd; replay_cmd ]

let () = exit (Cmd.eval' cmd)
