(* Telemetry CLI: run a scenario or a serialized fault plan with a
   telemetry collector attached, and render what the collector saw — a
   human summary (`run`), an ASCII leader/progress timeline (`timeline`),
   or the deterministic JSON snapshot (`export`).

   Scenario mode reproduces E1's configuration exactly (same builder,
   policy and per-k seed), so `export --k 4` reports the same per-pid op
   counts and leader-epoch count as E1's table row for k = 4. Plan mode
   accepts any tbwf-plan file and runs it through the nemesis campaign
   runner, so a committed counterexample can be inspected with the same
   lenses. `export --check-schema` pins the snapshot's key-path schema
   against a committed golden file; CI uses it to catch export drift. *)

open Cmdliner
open Tbwf_experiments
open Tbwf_nemesis
open Tbwf_telemetry

let fmt = Fmt.stdout

let read_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  text

let write_file path text =
  let oc = open_out path in
  output_string oc text;
  close_out oc

(* --- sources ------------------------------------------------------------- *)

(* What to run: either the E1-style degraded scenario, or a tbwf-plan file
   against one nemesis system. Either way the result is a collector plus a
   one-line description of the run. *)

type run = {
  telemetry : Collector.t;
  describe : string;
  verdict : string option;  (* plan runs carry a degradation verdict *)
}

(* First v2 record of the streaming run, kept so `export` can pin the
   stream schema against a golden the same way it pins the snapshot's. *)
let first_stream_record : Json.t option ref = ref None

let emit_stream record =
  if !first_stream_record = None then first_stream_record := Some record;
  print_string (Json.to_string record);
  print_newline ()

let run_scenario ~backend ~substrate ~n ~k ~steps ~seed ~window ~stream_every
    =
  let timely = List.init k (fun i -> n - 1 - i) in
  let stack =
    Tbwf_system.System.build ~backend ~substrate ~seed ~telemetry:true
      ~telemetry_window:window ~n Tbwf_system.System.Tbwf_atomic
  in
  let rt = stack.Tbwf_system.System.rt in
  let telemetry = Option.get stack.Tbwf_system.System.telemetry in
  (* Streaming: a windowed tail-rate monitor rides along and its running
     state is embedded in every v2 record. The monitor's sink runs first
     in the tee, so when the collector emits the record for window w the
     monitor has closed exactly windows 0..w. *)
  (match stream_every with
  | None -> ()
  | Some every ->
    let tm = Tbwf_check.Tail_monitor.create ~n ~window:every () in
    Tbwf_sim.Runtime.set_sink rt
      (Tbwf_sim.Sink.tee
         (Tbwf_check.Tail_monitor.sink tm)
         (Collector.sink telemetry));
    Collector.emit_every telemetry ~every
      ~extra:(fun ~window:_ ->
        [ "tail_monitor", Tbwf_check.Tail_monitor.to_json tm ])
      emit_stream);
  (* Replica server pids, when present, get scheduled alongside the
     clients; the E1-style timely set stays a client-pid property. *)
  let policy =
    match substrate with
    | Tbwf_system.System.Shared_memory -> Scenario.degraded_policy ~n ~timely ()
    | Tbwf_system.System.Message_passing config ->
      Scenario.degraded_policy
        ~n:(n + config.Tbwf_net.Net.replicas)
        ~timely ()
  in
  Tbwf_sim.Runtime.run rt ~policy ~steps;
  if stream_every <> None then Collector.stream_flush telemetry;
  Tbwf_sim.Runtime.stop rt;
  {
    telemetry;
    describe =
      Fmt.str
        "scenario: TBWF counter (atomic-register Ω∆, %s), n=%d, k=%d \
         timely (pids %a), %d steps, seed %Ld"
        (Tbwf_system.System.substrate_name substrate)
        n k
        Fmt.(brackets (list ~sep:comma int))
        timely steps seed;
    verdict = None;
  }

let run_plan_file ~backend ~substrate ~path ~system ~seed ~stream_every =
  match Fault_plan.of_string (read_file path) with
  | Error msg -> Error (Fmt.str "bad plan file %s: %s" path msg)
  | Ok plan ->
    let stream =
      Option.map (fun every -> every, emit_stream) stream_every
    in
    let r =
      Campaign.run_plan ~backend ~substrate ~seed ?stream ~plan ~system ()
    in
    let v = r.Campaign.rr_verdict in
    Ok
      {
        telemetry = r.Campaign.rr_telemetry;
        describe =
          Fmt.str "plan: %s (%d atoms, n=%d, horizon=%d) vs %s, seed %Ld"
            path
            (List.length (Fault_plan.atoms plan))
            (Fault_plan.n plan) (Fault_plan.horizon plan)
            (Campaign.system_name system)
            seed;
        verdict =
          Some
            (Fmt.str "degradation %s; measured tail ops/pid %a"
               (if v.Tbwf_check.Degradation.holds then "holds" else "FAILS")
               Fmt.(brackets (array ~sep:comma int))
               r.Campaign.rr_tail_ops);
      }

(* Quick dimensions are E1's quick dimensions; the default seed is E1's
   per-k seed so the exported numbers line up with its table. *)
let substrate_of_name = function
  | "shared-memory" -> Ok Tbwf_system.System.Shared_memory
  | "message-passing" ->
    Ok (Tbwf_system.System.Message_passing Tbwf_net.Net.default_config)
  | s ->
    Error
      (Fmt.str "unknown substrate %S (known: shared-memory, message-passing)"
         s)

let resolve ?stream_every ~backend ~substrate ~plan ~system ~full ~n ~k ~steps
    ~seed ~window () =
  match Tbwf_sim.Backend.of_string backend with
  | Error msg -> Error msg
  | Ok backend -> (
  match substrate_of_name substrate with
  | Error msg -> Error msg
  | Ok substrate when
      backend = Tbwf_sim.Backend.Compiled
      && substrate <> Tbwf_system.System.Shared_memory ->
    Error
      "the compiled backend requires the shared-memory substrate (use \
       --backend reference with --substrate message-passing)"
  | Ok substrate -> (
  match plan with
  | Some path -> (
    match Campaign.system_of_name system with
    | Error msg -> Error msg
    | Ok system ->
      let seed =
        match seed with
        | Some s -> Int64.of_int s
        | None -> Campaign.default_seed
      in
      run_plan_file ~backend ~substrate ~path ~system ~seed ~stream_every)
  | None ->
    let n = Option.value n ~default:(if full then 8 else 4) in
    let k = Option.value k ~default:n in
    if k < 0 || k > n then Error (Fmt.str "--k must be in 0..%d" n)
    else begin
      let steps =
        Option.value steps ~default:(if full then 240_000 else 60_000)
      in
      let seed =
        match seed with
        | Some s -> Int64.of_int s
        | None -> Int64.of_int (1000 + k)
      in
      Ok
        (run_scenario ~backend ~substrate ~n ~k ~steps ~seed ~window
           ~stream_every)
    end))

let with_run ?stream_every ~backend ~substrate ~plan ~system ~full ~n ~k
    ~steps ~seed ~window f =
  match
    resolve ?stream_every ~backend ~substrate ~plan ~system ~full ~n ~k ~steps
      ~seed ~window ()
  with
  | Error msg ->
    Fmt.epr "%s@." msg;
    2
  | Ok run -> f run

(* --- subcommands ---------------------------------------------------------- *)

let run_cmd_impl backend substrate plan system full n k steps seed window
    width =
  with_run ~backend ~substrate ~plan ~system ~full ~n ~k ~steps ~seed ~window
  @@ fun run ->
  Fmt.pf fmt "%s@." run.describe;
  Option.iter (Fmt.pf fmt "%s@.") run.verdict;
  Fmt.pf fmt "@.%a@." Collector.pp_summary run.telemetry;
  Fmt.pf fmt "%a" Timeline.pp (Timeline.build ~width run.telemetry);
  Fmt.flush fmt ();
  0

let timeline_cmd_impl backend substrate plan system full n k steps seed
    window width =
  with_run ~backend ~substrate ~plan ~system ~full ~n ~k ~steps ~seed ~window
  @@ fun run ->
  Fmt.pf fmt "%s@.@.%a" run.describe Timeline.pp
    (Timeline.build ~width run.telemetry);
  Fmt.flush fmt ();
  0

(* Exit 0 iff [actual] equals the golden schema at [path]; on drift,
   print the missing/extra key paths. Shared by the snapshot and the v2
   stream-record gates. *)
let schema_check ~label ~path actual =
  let golden = read_file path in
  if String.equal golden actual then begin
    Fmt.epr "%s schema matches %s@." label path;
    0
  end
  else begin
    let lines s = String.split_on_char '\n' s in
    let golden_l = lines golden and actual_l = lines actual in
    let missing =
      List.filter (fun l -> l <> "" && not (List.mem l actual_l)) golden_l
    and extra =
      List.filter (fun l -> l <> "" && not (List.mem l golden_l)) actual_l
    in
    Fmt.epr "%s schema DRIFT vs %s@." label path;
    List.iter (Fmt.epr "  - %s@.") missing;
    List.iter (Fmt.epr "  + %s@.") extra;
    1
  end

let export_cmd_impl backend substrate plan system full n k steps seed window
    stream_every pretty out check_schema write_schema check_stream_schema
    write_stream_schema =
  match stream_every with
  | Some every when every < 1 ->
    Fmt.epr "--stream-every must be positive@.";
    2
  | None when check_stream_schema <> None || write_stream_schema <> None ->
    Fmt.epr
      "--check-stream-schema/--write-stream-schema require --stream-every@.";
    2
  | _ ->
  with_run ?stream_every ~backend ~substrate ~plan ~system ~full ~n ~k ~steps
    ~seed ~window
  @@ fun run ->
  let snapshot = Collector.snapshot run.telemetry in
  let text =
    if pretty then Json.to_string_pretty snapshot
    else Json.to_string snapshot ^ "\n"
  in
  (match out with
  | Some path ->
    write_file path text;
    Fmt.epr "snapshot written to %s@." path
  | None -> print_string text);
  (match write_schema with
  | Some path ->
    write_file path (Json.schema_string snapshot);
    Fmt.epr "schema written to %s@." path
  | None -> ());
  (match write_stream_schema, !first_stream_record with
  | Some path, Some record ->
    write_file path (Json.schema_string record);
    Fmt.epr "stream schema written to %s@." path
  | Some path, None -> Fmt.epr "no stream record emitted; %s not written@." path
  | None, _ -> ());
  let rc_snapshot =
    match check_schema with
    | None -> 0
    | Some path ->
      schema_check ~label:"snapshot" ~path (Json.schema_string snapshot)
  in
  let rc_stream =
    match check_stream_schema, !first_stream_record with
    | None, _ -> 0
    | Some path, Some record ->
      schema_check ~label:"stream" ~path (Json.schema_string record)
    | Some _, None ->
      Fmt.epr "no stream record emitted to check@.";
      1
  in
  max rc_snapshot rc_stream

let list_systems_impl () =
  Fmt.pf fmt "%a@." Tbwf_system.System.pp_registry ();
  Fmt.flush fmt ();
  0

(* --- cmdliner wiring ------------------------------------------------------ *)

let plan_arg =
  Arg.(value & opt (some file) None
       & info [ "plan" ] ~docv:"FILE"
           ~doc:"Run the tbwf-plan file $(docv) through the nemesis \
                 campaign runner instead of the E1-style scenario.")

let system_arg =
  Arg.(value & opt string "tbwf-atomic"
       & info [ "system" ] ~docv:"SYSTEM"
           ~doc:"System under test for --plan runs (tbwf-atomic, \
                 tbwf-abortable, tbwf-universal, naive-booster, retry).")

let full_arg =
  Arg.(value & flag
       & info [ "full" ]
           ~doc:"Full scenario dimensions (n=8, 240k steps) instead of \
                 quick (n=4, 60k steps).")

let quick_arg =
  (* Quick is already the default; the flag exists so CI invocations can
     say what they mean. *)
  Arg.(value & flag
       & info [ "quick" ] ~doc:"Quick scenario dimensions (the default).")

let n_arg =
  Arg.(value & opt (some int) None
       & info [ "n" ] ~docv:"N" ~doc:"Number of processes.")

let k_arg =
  Arg.(value & opt (some int) None
       & info [ "k" ] ~docv:"K"
           ~doc:"Timely processes (highest-numbered pids, as in E1). \
                 Default: all of them.")

let steps_arg =
  Arg.(value & opt (some int) None
       & info [ "steps" ] ~docv:"STEPS" ~doc:"Scenario step budget.")

let seed_arg =
  Arg.(value & opt (some int) None
       & info [ "seed" ] ~docv:"SEED"
           ~doc:"Runtime seed. Default: E1's per-k seed (1000+k) in \
                 scenario mode, the nemesis default in plan mode.")

let backend_arg =
  Arg.(value & opt string "reference"
       & info [ "backend" ] ~docv:"BACKEND"
           ~doc:"Execution backend: reference (effects runtime) or \
                 compiled (flattened step machines). Observable output \
                 is byte-identical either way.")

let substrate_arg =
  Arg.(value & opt string "shared-memory"
       & info [ "substrate" ] ~docv:"SUBSTRATE"
           ~doc:"Register substrate: shared-memory, or message-passing \
                 (ABD-style quorum emulation over the simulated network; \
                 reference backend only).")

let window_arg =
  Arg.(value & opt int 1024
       & info [ "window" ] ~docv:"STEPS"
           ~doc:"Telemetry rate-series window, in steps.")

let width_arg =
  Arg.(value & opt int 72
       & info [ "width" ] ~docv:"COLS" ~doc:"Timeline width in columns.")

let common f =
  Term.(
    const
      (fun backend substrate plan system full _quick n k steps seed window ->
        f ~backend ~substrate ~plan ~system ~full ~n ~k ~steps ~seed ~window)
    $ backend_arg $ substrate_arg $ plan_arg $ system_arg $ full_arg
    $ quick_arg $ n_arg $ k_arg $ steps_arg $ seed_arg $ window_arg)

let run_cmd =
  Cmd.v
    (Cmd.info "run"
       ~doc:"run a scenario or plan and print the telemetry summary plus \
             the progress/leader timeline")
    Term.(
      common
        (fun ~backend ~substrate ~plan ~system ~full ~n ~k ~steps ~seed
             ~window width ->
          run_cmd_impl backend substrate plan system full n k steps seed
            window width)
      $ width_arg)

let timeline_cmd =
  Cmd.v
    (Cmd.info "timeline"
       ~doc:"run a scenario or plan and print only the progress/leader \
             timeline")
    Term.(
      common
        (fun ~backend ~substrate ~plan ~system ~full ~n ~k ~steps ~seed
             ~window width ->
          timeline_cmd_impl backend substrate plan system full n k steps
            seed window width)
      $ width_arg)

let export_cmd =
  let stream_every =
    Arg.(value & opt (some int) None
         & info [ "stream-every" ] ~docv:"STEPS"
             ~doc:"Stream one tbwf-telemetry/v2 JSONL record per $(docv) \
                   steps to stdout while the run executes (window tails, \
                   epoch churn, net section, running verdicts), before \
                   the final snapshot. The stream derives from \
                   event-ordered state only, so it is byte-identical \
                   under replay.")
  in
  let pretty =
    Arg.(value & flag & info [ "pretty" ] ~doc:"Indent the JSON output.")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE"
             ~doc:"Write the snapshot to $(docv) instead of stdout.")
  in
  let check_schema =
    Arg.(value & opt (some file) None
         & info [ "check-schema" ] ~docv:"FILE"
             ~doc:"Exit 1 unless the snapshot's key-path schema equals the \
                   golden schema in $(docv).")
  in
  let write_schema =
    Arg.(value & opt (some string) None
         & info [ "write-schema" ] ~docv:"FILE"
             ~doc:"Write the snapshot's key-path schema to $(docv) (to \
                   regenerate the golden file).")
  in
  let check_stream_schema =
    Arg.(value & opt (some file) None
         & info [ "check-stream-schema" ] ~docv:"FILE"
             ~doc:"Exit 1 unless the first tbwf-telemetry/v2 stream \
                   record's key-path schema equals the golden schema in \
                   $(docv). Requires --stream-every.")
  in
  let write_stream_schema =
    Arg.(value & opt (some string) None
         & info [ "write-stream-schema" ] ~docv:"FILE"
             ~doc:"Write the first stream record's key-path schema to \
                   $(docv) (to regenerate the golden file). Requires \
                   --stream-every.")
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:"run a scenario or plan and export the deterministic JSON \
             telemetry snapshot")
    Term.(
      common
        (fun ~backend ~substrate ~plan ~system ~full ~n ~k ~steps ~seed
             ~window stream_every pretty out check_schema write_schema
             check_stream_schema write_stream_schema ->
          export_cmd_impl backend substrate plan system full n k steps seed
            window stream_every pretty out check_schema write_schema
            check_stream_schema write_stream_schema)
      $ stream_every $ pretty $ out $ check_schema $ write_schema
      $ check_stream_schema $ write_stream_schema)

let list_systems_cmd =
  Cmd.v
    (Cmd.info "list-systems"
       ~doc:"list the system registry: ids, descriptions and paper \
             references (the names accepted by --system)")
    Term.(const list_systems_impl $ const ())

let cmd =
  let doc = "telemetry: summaries, timelines and JSON snapshots of runs" in
  Cmd.group (Cmd.info "tbwf_trace" ~doc)
    [ run_cmd; timeline_cmd; export_cmd; list_systems_cmd ]

let () = exit (Cmd.eval' cmd)
