(* Schedule-exploration CLI: exhaustively explore, fuzz, or replay the named
   scenarios of Tbwf_experiments.Explore_scenarios. Counterexample schedules
   round-trip through the tbwf-sched text format, so a bug found here can be
   committed and replayed as a regression test. *)

open Cmdliner
open Tbwf_experiments

let fmt = Fmt.stdout

let list_scenarios () =
  List.iter
    (fun s ->
      Fmt.pf fmt "%-11s n=%d max_steps=%-3d %s%s@." s.Explore_scenarios.name
        s.Explore_scenarios.n s.Explore_scenarios.max_steps
        s.Explore_scenarios.summary
        (if s.Explore_scenarios.expect_violation then " [buggy by design]"
         else ""))
    Explore_scenarios.all;
  Fmt.flush fmt ();
  0

let with_scenario name k =
  match Explore_scenarios.find name with
  | Some s -> k s
  | None ->
    Fmt.epr "unknown scenario %S (try: tbwf_explore list)@." name;
    2

let save_schedule s out pids =
  match out with
  | None -> ()
  | Some path ->
    let sched = Explore_scenarios.schedule_of s pids in
    let oc = open_out path in
    output_string oc (Tbwf_sim.Schedule.to_string sched);
    close_out oc;
    Fmt.pf fmt "schedule written to %s@." path

let pool_of jobs = Tbwf_parallel.Pool.create ~domains:jobs ()

let explore name naive no_por max_schedules out jobs =
  with_scenario name @@ fun s ->
  let outcome =
    if naive then Explore_scenarios.exhaustive_naive ~max_schedules s
    else
      Explore_scenarios.exhaustive ~max_schedules ~por:(not no_por)
        ~pool:(pool_of jobs) s
  in
  let open Tbwf_check.Explore in
  Fmt.pf fmt "scenario      %s (%s)@." s.Explore_scenarios.name
    s.Explore_scenarios.summary;
  Fmt.pf fmt "explorer      %s@."
    (if naive then "naive (per-prefix re-execution)"
     else if no_por then "incremental dfs"
     else "incremental dfs + sleep-set POR");
  Fmt.pf fmt "schedules     %d@." outcome.schedules;
  Fmt.pf fmt "exhausted     %b@." outcome.exhausted;
  (match outcome.violation with
  | None -> Fmt.pf fmt "violation     none@."
  | Some pids ->
    Fmt.pf fmt "violation     %a@."
      Tbwf_sim.Schedule.pp
      (Explore_scenarios.schedule_of s pids);
    save_schedule s out pids);
  Fmt.flush fmt ();
  if outcome.exhausted
     && outcome.violation <> None <> s.Explore_scenarios.expect_violation
  then 1
  else 0

let fuzz name seed runs out jobs =
  with_scenario name @@ fun s ->
  let f =
    Explore_scenarios.fuzz ~seed:(Int64.of_int seed) ~runs
      ~pool:(pool_of jobs) s
  in
  let open Tbwf_check.Explore in
  Fmt.pf fmt "scenario      %s@." s.Explore_scenarios.name;
  Fmt.pf fmt "runs          %d@." f.fuzz_runs;
  (match f.counterexample with
  | None -> Fmt.pf fmt "counterexample none@."
  | Some pids ->
    Fmt.pf fmt "witness len   %d (shrunk from %d)@." (List.length pids)
      (Option.value f.shrunk_from ~default:(List.length pids));
    Fmt.pf fmt "counterexample %a@."
      Tbwf_sim.Schedule.pp
      (Explore_scenarios.schedule_of s pids);
    save_schedule s out pids);
  Fmt.flush fmt ();
  0

let replay name file expect_violation =
  with_scenario name @@ fun s ->
  let text =
    let ic = open_in file in
    let len = in_channel_length ic in
    let text = really_input_string ic len in
    close_in ic;
    text
  in
  match Tbwf_sim.Schedule.of_string text with
  | Error msg ->
    Fmt.epr "bad schedule file %s: %s@." file msg;
    2
  | Ok sched ->
    let held = Explore_scenarios.replay s (Tbwf_sim.Schedule.pids sched) in
    Fmt.pf fmt "scenario      %s@." s.Explore_scenarios.name;
    Fmt.pf fmt "schedule      %d steps@." (Tbwf_sim.Schedule.length sched);
    Fmt.pf fmt "invariant     %s@." (if held then "held" else "VIOLATED");
    Fmt.flush fmt ();
    if held <> not expect_violation then 1 else 0

(* --- cmdliner wiring ----------------------------------------------------- *)

let scenario_arg =
  let doc = "Scenario name (see `tbwf_explore list')." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"SCENARIO" ~doc)

let out_arg =
  let doc = "Write any counterexample schedule to $(docv)." in
  Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc)

let jobs_arg =
  Arg.(value & opt int (Tbwf_parallel.Pool.default_domains ())
       & info [ "jobs"; "j" ] ~docv:"N"
           ~doc:"Domains to fan the search out over (the outcome is \
                 identical for any value; 1 disables domains).")

let list_cmd =
  Cmd.v (Cmd.info "list" ~doc:"list the built-in scenarios")
    Term.(const list_scenarios $ const ())

let explore_cmd =
  let naive =
    Arg.(value & flag
         & info [ "naive" ] ~doc:"Use the pre-reduction per-prefix explorer.")
  in
  let no_por =
    Arg.(value & flag
         & info [ "no-por" ] ~doc:"Disable sleep-set partial-order reduction.")
  in
  let max_schedules =
    let doc = "Schedule budget; past it the outcome is marked not exhausted." in
    Arg.(value & opt int 200_000 & info [ "max-schedules" ] ~docv:"N" ~doc)
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:"exhaustively explore every schedule of a scenario")
    Term.(
      const explore $ scenario_arg $ naive $ no_por $ max_schedules $ out_arg
      $ jobs_arg)

let fuzz_cmd =
  let seed =
    Arg.(value & opt int 0xF00D & info [ "seed" ] ~docv:"SEED"
           ~doc:"Fuzzer seed (fuzzing is deterministic per seed).")
  in
  let runs =
    Arg.(value & opt int 2_000 & info [ "runs" ] ~docv:"N"
           ~doc:"Random schedules to try.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"random-schedule fuzzing; shrinks any failure to a minimal script")
    Term.(const fuzz $ scenario_arg $ seed $ runs $ out_arg $ jobs_arg)

let replay_cmd =
  let file =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"FILE"
           ~doc:"Schedule file in tbwf-sched format.")
  in
  let expect_violation =
    Arg.(value & flag
         & info [ "expect-violation" ]
             ~doc:"Exit 0 iff the replay violates the invariant (for \
                   committed counterexamples).")
  in
  Cmd.v
    (Cmd.info "replay" ~doc:"replay a serialized schedule deterministically")
    Term.(const replay $ scenario_arg $ file $ expect_violation)

let cmd =
  let doc = "explore, fuzz and replay schedules of TBWF scenarios" in
  Cmd.group (Cmd.info "tbwf_explore" ~doc)
    [ list_cmd; explore_cmd; fuzz_cmd; replay_cmd ]

let () = exit (Cmd.eval' cmd)
