(* Run the experiment suite: all tables from EXPERIMENTS.md, or a single
   experiment by id. Each experiment renders into its own buffer — one
   pool task per experiment — and the buffers print in registry order, so
   stdout is byte-identical at any --jobs value. Wall-clock timings go to
   stderr (they vary run to run by nature). *)

open Cmdliner

let run backend quick jobs ids =
  match Tbwf_sim.Backend.of_string backend with
  | Error msg ->
    Fmt.epr "%s@." msg;
    exit 2
  | Ok backend ->
  Tbwf_experiments.Scenario.set_default_backend backend;
  let fmt = Fmt.stdout in
  let entries =
    match ids with
    | [] -> List.map Result.ok Tbwf_experiments.Registry.all
    | ids ->
      List.map
        (fun id ->
          match Tbwf_experiments.Registry.find id with
          | Some entry -> Ok entry
          | None -> Error id)
        ids
  in
  let known, unknown =
    List.partition_map
      (function Ok e -> Either.Left e | Error id -> Either.Right id)
      entries
  in
  List.iter
    (fun id -> Fmt.epr "unknown experiment %S (known: E1..E18)@." id)
    unknown;
  let pool = Tbwf_parallel.Pool.create ~domains:jobs () in
  let results =
    Tbwf_parallel.Pool.map pool (Array.of_list known) (fun entry ->
        let buf = Buffer.create 4096 in
        let bfmt = Format.formatter_of_buffer buf in
        let start = Unix.gettimeofday () in
        entry.Tbwf_experiments.Registry.run ~quick bfmt;
        Format.pp_print_flush bfmt ();
        Buffer.contents buf, Unix.gettimeofday () -. start)
  in
  let total = ref 0.0 in
  List.iteri
    (fun i entry ->
      let body, elapsed = results.(i) in
      Fmt.pf fmt "@.=== %s: %s ===@." entry.Tbwf_experiments.Registry.id
        entry.Tbwf_experiments.Registry.title;
      Fmt.pf fmt "%s" body;
      Fmt.epr "[%s: %.2fs]@." entry.Tbwf_experiments.Registry.id elapsed;
      total := !total +. elapsed)
    known;
  if List.length known > 1 then Fmt.epr "[total: %.2fs]@." !total;
  Fmt.flush fmt ()

let quick =
  let doc = "Run smaller configurations (seconds instead of minutes)." in
  Arg.(value & flag & info [ "quick"; "q" ] ~doc)

let backend =
  let doc =
    "Execution backend for every scenario-built stack: reference or \
     compiled. Tables are byte-identical either way."
  in
  Arg.(value & opt string "reference" & info [ "backend" ] ~docv:"BACKEND" ~doc)

let jobs =
  let doc =
    "Domains to fan experiments out over (stdout is byte-identical for \
     any value; 1 disables domains)."
  in
  Arg.(value & opt int (Tbwf_parallel.Pool.default_domains ())
       & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let ids =
  let doc = "Experiment ids to run (default: all of E1..E18)." in
  Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc)

let cmd =
  let doc = "regenerate the TBWF evaluation tables" in
  let info = Cmd.info "experiments" ~doc in
  Cmd.v info Term.(const run $ backend $ quick $ jobs $ ids)

let () = exit (Cmd.eval cmd)
