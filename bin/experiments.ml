(* Run the experiment suite: all tables from EXPERIMENTS.md, or a single
   experiment by id. *)

open Cmdliner

let run quick ids =
  let fmt = Fmt.stdout in
  (match ids with
  | [] -> Tbwf_experiments.Registry.run_all ~quick fmt
  | ids ->
    List.iter
      (fun id ->
        match Tbwf_experiments.Registry.find id with
        | Some entry ->
          Fmt.pf fmt "@.=== %s: %s ===@." entry.Tbwf_experiments.Registry.id
            entry.Tbwf_experiments.Registry.title;
          entry.Tbwf_experiments.Registry.run ~quick fmt
        | None -> Fmt.epr "unknown experiment %S (known: E1..E16)@." id)
      ids);
  Fmt.flush fmt ()

let quick =
  let doc = "Run smaller configurations (seconds instead of minutes)." in
  Arg.(value & flag & info [ "quick"; "q" ] ~doc)

let ids =
  let doc = "Experiment ids to run (default: all of E1..E16)." in
  Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc)

let cmd =
  let doc = "regenerate the TBWF evaluation tables" in
  let info = Cmd.info "experiments" ~doc in
  Cmd.v info Term.(const run $ quick $ ids)

let () = exit (Cmd.eval cmd)
