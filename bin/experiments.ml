(* Run the experiment suite: all tables from EXPERIMENTS.md, or a single
   experiment by id. Each experiment reports its own wall-clock elapsed
   time, and a total is printed at the end. *)

open Cmdliner

let run quick ids =
  let fmt = Fmt.stdout in
  let timed entry =
    let start = Unix.gettimeofday () in
    entry.Tbwf_experiments.Registry.run ~quick fmt;
    let elapsed = Unix.gettimeofday () -. start in
    Fmt.pf fmt "[%s: %.2fs]@." entry.Tbwf_experiments.Registry.id elapsed;
    elapsed
  in
  let entries =
    match ids with
    | [] -> List.map Result.ok Tbwf_experiments.Registry.all
    | ids ->
      List.map
        (fun id ->
          match Tbwf_experiments.Registry.find id with
          | Some entry -> Ok entry
          | None -> Error id)
        ids
  in
  let total =
    List.fold_left
      (fun total entry ->
        match entry with
        | Ok entry ->
          Fmt.pf fmt "@.=== %s: %s ===@." entry.Tbwf_experiments.Registry.id
            entry.Tbwf_experiments.Registry.title;
          total +. timed entry
        | Error id ->
          Fmt.epr "unknown experiment %S (known: E1..E16)@." id;
          total)
      0.0 entries
  in
  if List.length entries > 1 then Fmt.pf fmt "@.[total: %.2fs]@." total;
  Fmt.flush fmt ()

let quick =
  let doc = "Run smaller configurations (seconds instead of minutes)." in
  Arg.(value & flag & info [ "quick"; "q" ] ~doc)

let ids =
  let doc = "Experiment ids to run (default: all of E1..E16)." in
  Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc)

let cmd =
  let doc = "regenerate the TBWF evaluation tables" in
  let info = Cmd.info "experiments" ~doc in
  Cmd.v info Term.(const run $ quick $ ids)

let () = exit (Cmd.eval cmd)
