(* Long-horizon soak CLI: many independent shards, each a (system,
   campaign) cell from the nemesis catalogue run for a long horizon with
   the memory-bounded telemetry configuration — no trace recording, a
   ring-buffered rate series, streaming v2 JSONL snapshots, and the
   online degradation checker standing in for the post-hoc one (there is
   no trace to check post hoc).

   Output contract: stdout carries the deterministic artifact — every
   shard's JSONL stream in shard order, then one tbwf-soak/v1 aggregate
   record — and is byte-identical for any --jobs value (shards fan out
   over a Pool, which merges in canonical task order). Wall-clock
   numbers (per-shard seconds, ops/sec) go to stderr only. *)

open Cmdliner
open Tbwf_sim
open Tbwf_check
open Tbwf_nemesis
open Tbwf_telemetry

let soak_schema_version = "tbwf-soak/v1"

(* Shard i runs system (i mod |systems|) under campaign
   (i / |systems|) mod |catalogue| — systems-major, so any shard count
   covers the systems as evenly as possible. *)
let shard_cell ~shard =
  let systems = Array.of_list Campaign.all_systems in
  let catalogue = Array.of_list Campaign.catalogue in
  let system = systems.(shard mod Array.length systems) in
  let campaign =
    catalogue.(shard / Array.length systems mod Array.length catalogue)
  in
  system, campaign

type shard_result = {
  sr_shard : int;
  sr_system : Campaign.system;
  sr_campaign : string;
  sr_jsonl : string;  (* the shard's v2 stream, one record per line *)
  sr_telemetry : Collector.t;
  sr_verdict : Tbwf_check.Degradation.verdict;
  sr_expected_fail : bool;
  sr_seconds : float;
  sr_rss_kb : int option;
      (* process VmHWM when the shard finished: host diagnostics for
         stderr, never part of the stdout artifact *)
}

let run_shard ~shard ~n ~horizon ~every ~window ~retain ~master_seed =
  let start = Unix.gettimeofday () in
  let system, campaign = shard_cell ~shard in
  let plan = Campaign.plan campaign ~n ~horizon in
  let seed = Rng.task_seed ~master:master_seed shard in
  let qa_policy =
    Fault_plan.abort_policy plan ~target:Fault_plan.Qa
      ~base:Tbwf_registers.Abort_policy.Always
  in
  let mesh_policy =
    Fault_plan.abort_policy plan ~target:Fault_plan.Omega_mesh
      ~base:Tbwf_registers.Abort_policy.Always
  in
  let stack =
    Tbwf_system.System.build ~seed ~record_trace:false ~qa_policy ~mesh_policy
      ~telemetry:true ~telemetry_window:window ~telemetry_retain:retain ~n
      system
  in
  let rt = stack.Tbwf_system.System.rt in
  let telemetry = Option.get stack.Tbwf_system.System.telemetry in
  Fault_plan.install_crashes plan rt;
  (* Same tail boundary and floor as Campaign.run_plan; the verdict comes
     from the online checker alone, since trace recording is off. *)
  let snap =
    max (Fault_plan.settle_step plan) (horizon - (horizon / 4))
  in
  let prediction =
    { (Fault_plan.prediction plan) with Degradation.pred_from = snap }
  in
  let min_ops = Campaign.required_tail_ops ~n ~tail:(horizon - snap) in
  let online = Degradation.Online.create ~min_ops prediction in
  let tm = Tail_monitor.create ~n ~window:every () in
  (* Tee order fixes what each record sees: the monitor (first) has
     closed exactly the record's window, the collector (second) emits,
     the checker (last) has consumed exactly the covered steps. *)
  Runtime.set_sink rt
    (Sink.tee (Tail_monitor.sink tm)
       (Sink.tee (Collector.sink telemetry) (Degradation.Online.sink online)));
  let buf = Buffer.create 4096 in
  Collector.emit_every telemetry ~every
    ~extra:(fun ~window:_ ->
      [
        "shard", Json.Int shard;
        "system", Json.Str (Campaign.system_name system);
        "campaign", Json.Str (Campaign.name campaign);
        ( "verdict",
          Degradation.verdict_json (Degradation.Online.verdict online) );
        "tail_monitor", Tail_monitor.to_json tm;
      ])
    (fun record ->
      Buffer.add_string buf (Json.to_string record);
      Buffer.add_char buf '\n');
  Runtime.run rt ~policy:(Fault_plan.policy plan) ~steps:horizon;
  Collector.stream_flush telemetry;
  let verdict = Degradation.Online.verdict online in
  Runtime.stop rt;
  {
    sr_shard = shard;
    sr_system = system;
    sr_campaign = Campaign.name campaign;
    sr_jsonl = Buffer.contents buf;
    sr_telemetry = telemetry;
    sr_verdict = verdict;
    sr_expected_fail = List.mem system (Campaign.expect_fail campaign);
    sr_seconds = Unix.gettimeofday () -. start;
    sr_rss_kb = Resource.peak_rss_kb ();
  }

(* The aggregate record: per-system merged telemetry (collectors merge
   in shard order, so the aggregate is order-fixed), completion-time
   tails of the app layer, epoch churn, and the verdict tally. *)
let aggregate ~n ~horizon ~every ~shards results =
  let by_system sys =
    List.filter (fun r -> r.sr_system = sys) results
  in
  let quantile_json q =
    Json.Obj
      [
        "count", Json.Int (Quantile.count q);
        "p50", Json.Int (Quantile.p50 q);
        "p99", Json.Int (Quantile.p99 q);
        "p999", Json.Int (Quantile.p999 q);
        "max", Json.Int (Quantile.max_value q);
      ]
  in
  let systems =
    List.filter_map
      (fun sys ->
        match by_system sys with
        | [] -> None
        | rs ->
          let merged =
            Collector.merge_all (List.map (fun r -> r.sr_telemetry) rs)
          in
          let completed =
            Array.fold_left ( + ) 0 (Collector.app_completed merged)
          in
          let holds =
            List.length
              (List.filter
                 (fun r -> r.sr_verdict.Tbwf_check.Degradation.holds)
                 rs)
          in
          let as_expected =
            List.for_all
              (fun r ->
                r.sr_verdict.Tbwf_check.Degradation.holds
                = not r.sr_expected_fail)
              rs
          in
          Some
            (Json.Obj
               [
                 "system", Json.Str (Campaign.system_name sys);
                 "shards", Json.Int (List.length rs);
                 "steps", Json.Int (Collector.total_steps merged);
                 "completed", Json.Int completed;
                 ( "app_tail",
                   quantile_json
                     (Span.tail_of (Collector.spans merged) Sink.App) );
                 "leader_epochs", Json.Int (Collector.leader_epochs merged);
                 "verdict_holds", Json.Int holds;
                 "as_expected", Json.Bool as_expected;
               ])
          )
      Campaign.all_systems
  in
  let all_as_expected =
    List.for_all
      (fun r ->
        r.sr_verdict.Tbwf_check.Degradation.holds = not r.sr_expected_fail)
      results
  in
  Json.Obj
    [
      "schema", Json.Str soak_schema_version;
      "shards", Json.Int shards;
      "n", Json.Int n;
      "horizon_per_shard", Json.Int horizon;
      "every", Json.Int every;
      ( "total_steps",
        Json.Int
          (List.fold_left
             (fun acc r -> acc + Collector.total_steps r.sr_telemetry)
             0 results) );
      "systems", Json.Arr systems;
      "all_as_expected", Json.Bool all_as_expected;
    ]

let soak shards steps every window retain n seed jobs =
  if shards < 1 then begin
    Fmt.epr "--shards must be positive@.";
    2
  end
  else if steps < 1 then begin
    Fmt.epr "--steps must be positive@.";
    2
  end
  else begin
    let every = match every with Some e -> e | None -> max 1 (steps / 8) in
    if every < 1 then begin
      Fmt.epr "--every must be positive@.";
      2
    end
    else begin
      let master_seed = Int64.of_int seed in
      let pool = Tbwf_parallel.Pool.create ~domains:jobs () in
      let start = Unix.gettimeofday () in
      let results =
        Tbwf_parallel.Pool.map pool
          (Array.init shards (fun i -> i))
          (fun shard ->
            run_shard ~shard ~n ~horizon:steps ~every ~window ~retain
              ~master_seed)
        |> Array.to_list
      in
      let wall = Unix.gettimeofday () -. start in
      (* rss is the process VmHWM when the shard finished — the shard
         whose line first shows a jump is the one that pushed the
         high-water mark *)
      List.iter
        (fun r ->
          print_string r.sr_jsonl;
          Fmt.epr "shard %2d %-16s %-12s %s %6.2fs%s@." r.sr_shard
            (Campaign.system_name r.sr_system)
            r.sr_campaign
            (if r.sr_verdict.Tbwf_check.Degradation.holds then "holds"
             else "fails")
            r.sr_seconds
            (match r.sr_rss_kb with
            | Some kb -> Fmt.str " rss %d kB" kb
            | None -> ""))
        results;
      let agg = aggregate ~n ~horizon:steps ~every ~shards results in
      print_string (Json.to_string agg);
      print_newline ();
      let total_ops =
        List.fold_left
          (fun acc r ->
            acc
            + Array.fold_left ( + ) 0
                (Collector.app_completed r.sr_telemetry))
          0 results
      in
      Fmt.epr "%d shards x %d steps in %.2fs wall (%.0f steps/s, %.0f ops/s)@."
        shards steps wall
        (float_of_int (shards * steps) /. wall)
        (float_of_int total_ops /. wall);
      let all_ok =
        List.for_all
          (fun r ->
            r.sr_verdict.Tbwf_check.Degradation.holds
            = not r.sr_expected_fail)
          results
      in
      if all_ok then 0 else 1
    end
  end

(* --- cmdliner wiring ------------------------------------------------------ *)

let shards_arg =
  Arg.(value & opt int 10
       & info [ "shards" ] ~docv:"N"
           ~doc:"Independent (system, campaign) shards to run; shard i \
                 runs system (i mod 5) under catalogue campaign \
                 ((i / 5) mod 6).")

let steps_arg =
  Arg.(value & opt int 1_000_000
       & info [ "steps" ] ~docv:"STEPS" ~doc:"Horizon per shard, in steps.")

let every_arg =
  Arg.(value & opt (some int) None
       & info [ "every" ] ~docv:"STEPS"
           ~doc:"Streaming snapshot cadence per shard (default: steps/8).")

let window_arg =
  Arg.(value & opt int 1024
       & info [ "window" ] ~docv:"STEPS"
           ~doc:"Telemetry rate-series window, in steps.")

let retain_arg =
  Arg.(value & opt int 64
       & info [ "retain" ] ~docv:"WINDOWS"
           ~doc:"Rate-series windows kept live per shard (older windows \
                 fold into exact totals) — the memory bound.")

let n_arg =
  Arg.(value & opt int 4
       & info [ "n" ] ~docv:"N" ~doc:"Processes per shard.")

let seed_arg =
  Arg.(value & opt int 0x50AC
       & info [ "seed" ] ~docv:"SEED"
           ~doc:"Master seed; shard i runs with the split seed \
                 task_seed(master, i).")

let jobs_arg =
  Arg.(value & opt int (Tbwf_parallel.Pool.default_domains ())
       & info [ "jobs"; "j" ] ~docv:"N"
           ~doc:"Domains to fan shards out over (stdout is byte-identical \
                 for any value; 1 disables domains).")

let cmd =
  let doc =
    "long-horizon soak: catalogue campaigns at large step counts with \
     memory-bounded telemetry, streaming JSONL snapshots and online \
     degradation verdicts"
  in
  Cmd.v (Cmd.info "tbwf_soak" ~doc)
    Term.(
      const soak $ shards_arg $ steps_arg $ every_arg $ window_arg
      $ retain_arg $ n_arg $ seed_arg $ jobs_arg)

let () = exit (Cmd.eval' cmd)
