(* Consensus from Ω∆ — the paper's closing remark of Section 1.2 made
   executable.

   Five processes must agree on a configuration value. The leader elector is
   Ω∆ built from abortable registers only (the paper's weakest-primitive
   construction), adapted into the failure detector Ω; a shared-memory
   ballot protocol (Disk-Paxos style, over atomic registers) does the rest.
   One process decelerates forever and another crashes mid-run — the timely
   majority still decides, and everyone who decides agrees.

     dune exec examples/omega_consensus.exe
*)

open Tbwf_sim
open Tbwf_registers
open Tbwf_consensus

let n = 5

let () =
  let rt = Runtime.create ~seed:31L ~n () in
  let omega =
    Tbwf_system.System.install_abortable rt ~policy:Abort_policy.Always ()
  in
  let adapter = Consensus.Omega_adapter.attach omega.handles in
  let instance = Consensus.create rt ~name:"config" ~omega:adapter in
  let decisions = Array.make n None in
  let proposal pid = Value.Pair (Str "config-of", Int pid) in
  for pid = 0 to n - 1 do
    Runtime.spawn rt ~pid ~name:"proposer" (fun () ->
        let decided = Consensus.propose instance (proposal pid) in
        decisions.(pid) <- Some decided)
  done;
  (* pid 0 decelerates forever; pid 4 crashes; pids 1-3 are timely. *)
  Runtime.crash_at rt ~pid:4 ~step:3_000;
  let policy =
    Policy.of_patterns
      [
        0, Policy.Slowing { initial_gap = 60; growth = 1.2; burst = 40 };
        1, Policy.Every { period = 6; offset = 0 };
        2, Policy.Every { period = 6; offset = 2 };
        3, Policy.Every { period = 6; offset = 4 };
        4, Policy.Weighted 1.0;
      ]
  in
  Runtime.run rt ~policy ~steps:800_000;
  Runtime.stop rt;
  Array.iteri
    (fun pid decision ->
      match decision with
      | Some v -> Fmt.pr "p%d decided %a@." pid Value.pp v
      | None ->
        Fmt.pr "p%d undecided (%s)@." pid
          (if Runtime.crashed rt ~pid then "crashed" else "not timely"))
    decisions;
  let decided = Array.to_list decisions |> List.filter_map Fun.id in
  (match decided with
  | first :: rest ->
    assert (List.for_all (Value.equal first) rest);
    Fmt.pr "agreement across %d deciders on %a@." (List.length decided)
      Value.pp first
  | [] -> assert false);
  Fmt.pr
    "consensus solved with Ω∆ over abortable registers — primitives weaker \
     than safe registers — exactly as §1.2 of the paper claims.@."
