(* Dynamic leader election under flickering candidacies.

   Six processes use Ω∆ directly (no shared object): two compete forever,
   three keep joining and leaving the competition, one competes briefly and
   retires. The run prints each process's leader view over time — watch the
   system converge on a stable timely leader even while half the candidates
   flicker, exactly as Definition 5 promises.

     dune exec examples/flicker.exe
*)

open Tbwf_sim
open Tbwf_omega

let n = 6

let () =
  let rt = Runtime.create ~seed:99L ~n () in
  let omega = Tbwf_system.System.install_atomic rt in
  let handles = omega.handles in
  (* Permanent candidates: 0 and 1. *)
  List.iter
    (fun pid ->
      Runtime.spawn rt ~pid ~name:"pcand" (fun () ->
          handles.(pid).Omega_spec.candidate := true))
    [ 0; 1 ];
  (* Repeated candidates: 2, 3, 4 join and leave forever (canonically). *)
  List.iter
    (fun pid ->
      Runtime.spawn rt ~pid ~name:"rcand" (fun () ->
          while true do
            Omega_spec.canonical_join handles.(pid);
            for _ = 1 to 150 do
              Runtime.yield ()
            done;
            Omega_spec.leave handles.(pid);
            for _ = 1 to 150 do
              Runtime.yield ()
            done
          done))
    [ 2; 3; 4 ];
  (* Process 5 competes once, then retires for good. *)
  Runtime.spawn rt ~pid:5 ~name:"ncand" (fun () ->
      handles.(5).Omega_spec.candidate := true;
      for _ = 1 to 200 do
        Runtime.yield ()
      done;
      handles.(5).Omega_spec.candidate := false);
  let policy = Policy.round_robin () in
  Fmt.pr "leader view of each process over time (? = no information):@.@.";
  Fmt.pr "%10s |" "step";
  for pid = 0 to n - 1 do
    Fmt.pr " p%d |" pid
  done;
  Fmt.pr "@.";
  for _seg = 1 to 20 do
    Runtime.run rt ~policy ~steps:15_000;
    Fmt.pr "%10d |" (Runtime.now rt);
    Array.iter
      (fun h ->
        match !(h.Omega_spec.leader) with
        | Omega_spec.Leader l -> Fmt.pr "  %d |" l
        | Omega_spec.No_leader -> Fmt.pr "  ? |")
      handles;
    Fmt.pr "@."
  done;
  Runtime.stop rt;
  Fmt.pr
    "@.The permanent candidates (p0, p1) settle on one leader; the repeated \
     candidates (p2-p4) see that leader or '?'; the retired candidate (p5) \
     settles on '?'.@."
