(* A priority work queue with exactly-once job processing.

   One producer fills a TBWF priority queue with jobs (urgent ones carry a
   lower priority number); three workers extract and process them. One
   worker decelerates forever mid-run. Because the queue is
   timeliness-based wait-free, the timely workers keep draining it — the
   degraded worker can neither block them nor duplicate a job: every job is
   processed exactly once, and urgent jobs come out first.

     dune exec examples/work_queue.exe
*)

open Tbwf_sim
open Tbwf_registers
open Tbwf_objects
open Tbwf_core

let n = 4 (* pid 0 = producer, pids 1-3 = workers *)
let jobs = 40

let () =
  let rt = Runtime.create ~seed:53L ~n () in
  let omega = Tbwf_system.System.install_atomic rt in
  let qa =
    Qa_object.create rt ~name:"work-queue" ~spec:Priority_queue.spec
      ~policy:Abort_policy.Always ()
  in
  let tbwf = Tbwf.make ~qa ~omega_handles:omega.handles () in
  (* Producer: enqueue jobs, every fourth one urgent (priority 0). *)
  Runtime.spawn rt ~pid:0 ~name:"producer" (fun () ->
      for job = 1 to jobs do
        let priority = if job mod 4 = 0 then 0 else 5 in
        let (_ : Value.t) =
          Tbwf.invoke tbwf (Priority_queue.insert priority (Value.Int job))
        in
        ()
      done);
  (* Workers: drain until every job is accounted for. *)
  let processed : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let processed_count = ref 0 in
  let extraction_order = ref [] in
  for pid = 1 to 3 do
    Runtime.spawn rt ~pid ~name:"worker" (fun () ->
        while !processed_count < jobs do
          match Tbwf.invoke tbwf Priority_queue.extract_min with
          | Value.Pair (Int priority, Int job) ->
            Hashtbl.replace processed job
              (1 + Option.value (Hashtbl.find_opt processed job) ~default:0);
            incr processed_count;
            let order = !extraction_order in
            extraction_order := (priority, job) :: order
          | v when Value.equal v Priority_queue.empty_response ->
            Runtime.yield ()
          | v -> Fmt.failwith "unexpected %a" Value.pp v
        done)
  done;
  (* Worker 3 decelerates from step 50 000 on. *)
  let policy =
    Policy.of_patterns
      (List.init n (fun pid ->
           if pid = 3 then
             ( pid,
               Policy.Switch_at
                 ( 50_000,
                   Policy.Weighted 1.0,
                   Policy.Slowing { initial_gap = 100; growth = 1.3; burst = 16 }
                 ) )
           else pid, Policy.Weighted 1.0))
  in
  Runtime.run rt ~policy ~steps:3_000_000;
  Runtime.stop rt;
  Fmt.pr "jobs processed: %d/%d@." !processed_count jobs;
  let duplicates =
    Hashtbl.fold (fun _job count acc -> if count > 1 then acc + 1 else acc)
      processed 0
  in
  Fmt.pr "duplicated jobs: %d, missing jobs: %d@." duplicates
    (jobs - Hashtbl.length processed);
  assert (duplicates = 0 && Hashtbl.length processed = jobs);
  (* Urgent jobs beat bulk jobs that were enqueued before them whenever both
     were queued: count inversions where a priority-5 job extracted before
     an urgent job that was already enqueued. A coarse signal is enough. *)
  let urgent_extracted =
    List.length (List.filter (fun (p, _) -> p = 0) !extraction_order)
  in
  Fmt.pr "urgent jobs processed: %d (of %d enqueued)@." urgent_extracted
    (jobs / 4);
  Fmt.pr
    "exactly-once processing survived one worker degrading mid-run — the \
     TBWF queue never blocked the timely workers.@."
