(* A replicated-cache-style workload on a TBWF key-value store.

   Five worker processes share one KV store built with the TBWF universal
   construction over abortable registers' Ω∆ (the paper's weakest-primitive
   stack). Each worker keeps writing its own key and reading a neighbour's;
   one worker decelerates forever. The store stays consistent (every
   committed put is visible exactly once) and the timely workers never
   block on the slow one.

     dune exec examples/kvstore.exe
*)

open Tbwf_sim
open Tbwf_registers
open Tbwf_objects
open Tbwf_core

let n = 5
let steps = 300_000

let () =
  let rt = Runtime.create ~seed:14L ~n () in
  let omega =
    Tbwf_system.System.install_abortable rt ~policy:Abort_policy.Always ()
  in
  let qa =
    Qa_object.create rt ~name:"kv" ~spec:Kv_store.spec
      ~policy:Abort_policy.Always ()
  in
  let tbwf = Tbwf.make ~qa ~omega_handles:omega.handles () in
  let stats = Workload.fresh_stats ~n in
  let key pid = Fmt.str "worker-%d" pid in
  let next_op ~pid ~k =
    (* Alternate: bump own key, then read the next worker's key. *)
    if k mod 2 = 0 then Some (Kv_store.put (key pid) (Value.Int (k / 2)))
    else Some (Kv_store.get (key ((pid + 1) mod n)))
  in
  Workload.spawn_clients rt ~pids:(List.init n Fun.id) ~stats
    ~invoke:(Tbwf.invoke tbwf) ~next_op;
  (* Worker 0 decelerates forever; the rest are timely. *)
  let policy =
    Policy.of_patterns ~name:"kv-degraded"
      (List.init n (fun pid ->
           if pid = 0 then
             pid, Policy.Slowing { initial_gap = 50; growth = 1.2; burst = 16 }
           else pid, Policy.Every { period = 2 * (n - 1); offset = 2 * (pid - 1) }))
  in
  Runtime.run rt ~policy ~steps;
  Runtime.stop rt;
  Fmt.pr "per-worker completed ops: %a@."
    Fmt.(array ~sep:(any ", ") int)
    stats.Workload.completed;
  Fmt.pr "final store state: %a@." Value.pp (qa.Qa_intf.peek_state ());
  (* Consistency: each worker's key holds the sequence number of its last
     completed put (puts and gets alternate, so completed/2 puts, the last
     one writing (completed-1)/2 when odd count, etc.). *)
  let state = qa.Qa_intf.peek_state () in
  let expected pid =
    let puts = (stats.Workload.completed.(pid) + 1) / 2 in
    if puts = 0 then None else Some (Value.Int (puts - 1))
  in
  let check pid =
    let bound =
      match state with
      | Value.List items ->
        List.find_map
          (function
            | Value.Pair (Str k, v) when String.equal k (key pid) -> Some v
            | _ -> None)
          items
      | _ -> None
    in
    match bound, expected pid with
    | Some v, Some e when Value.equal v e -> true
    | None, None -> true
    | Some (Value.Int got), Some (Value.Int want) ->
      (* The worker may have a put in flight that already took effect. *)
      got = want || got = want + 1
    | _ -> false
  in
  let all_consistent = List.for_all check (List.init n Fun.id) in
  Fmt.pr "store consistent with completed puts: %b@." all_consistent;
  Fmt.pr
    "worker 0 decelerated (completed %d ops) without ever blocking the \
     timely workers.@."
    stats.Workload.completed.(0)
