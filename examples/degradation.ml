(* Graceful degradation, the paper's headline property.

   Eight processes share a TBWF counter. We sweep the number of timely
   processes k from 8 down to 2; the others decelerate forever (each step
   gap 15% longer than the last). Watch the timely processes' throughput
   stay healthy no matter how many of their peers degrade — and compare the
   naive booster, where one decelerating process eventually stalls everyone.

     dune exec examples/degradation.exe
*)

open Tbwf_sim
open Tbwf_core
open Tbwf_objects
open Tbwf_experiments

let n = 8
let steps = 200_000

let run ~omega ~k =
  let timely = List.init k (fun i -> n - 1 - i) in
  let stack =
    Scenario.build ~seed:7L ~n ~omega ~spec:Counter.spec
      ~next_op:(Workload.forever Counter.inc)
      ~client_pids:(List.init n Fun.id) ()
  in
  let policy = Scenario.degraded_policy ~n ~timely () in
  Runtime.run stack.Scenario.rt ~policy ~steps;
  Runtime.stop stack.Scenario.rt;
  let completed = stack.Scenario.stats.Workload.completed in
  let timely_ops = List.map (fun pid -> completed.(pid)) timely in
  let untimely_ops =
    List.filteri (fun pid _ -> not (List.mem pid timely)) (Array.to_list completed)
  in
  let sum = List.fold_left ( + ) 0 in
  k, sum timely_ops, List.fold_left min max_int timely_ops, sum untimely_ops

let () =
  Fmt.pr "TBWF counter, n=%d, %d steps; k timely vs (n-k) decelerating@.@." n steps;
  Fmt.pr "%-28s %4s %12s %11s %13s@." "system" "k" "timely total"
    "timely min" "untimely total";
  List.iter
    (fun k ->
      let k, total, min_ops, untimely = run ~omega:Scenario.Omega_atomic ~k in
      Fmt.pr "%-28s %4d %12d %11d %13d@." "TBWF (atomic registers)" k total
        min_ops untimely)
    [ 8; 6; 4; 2 ];
  Fmt.pr "@.";
  List.iter
    (fun k ->
      let k, total, min_ops, untimely = run ~omega:Scenario.Omega_naive ~k in
      Fmt.pr "%-28s %4d %12d %11d %13d@." "naive booster (baseline)" k total
        min_ops untimely)
    [ 8; 6; 4; 2 ];
  Fmt.pr
    "@.Every TBWF row keeps a healthy 'timely min': no process that keeps \
     its relative speed is starved, no matter how many peers decelerate. \
     The naive booster fails twice over: with no punishments leadership \
     never rotates fairly (its 'timely min' can hit 0 even when everyone \
     is timely), and once a decelerating process exists (k < 8) its \
     doubling timeouts eventually trust that process forever, capping \
     everyone's throughput at the slow process's rate.@."
