(* Quickstart: a timeliness-based wait-free shared counter.

   Four processes each run 25 increments through the TBWF universal
   construction (Figure 7 of the paper): a query-abortable counter plus the
   dynamic leader elector Ω∆ built from activity monitors and atomic
   registers. Run with:

     dune exec examples/quickstart.exe
*)

open Tbwf_sim
open Tbwf_registers
open Tbwf_objects
open Tbwf_core

let n = 4
let ops_per_process = 25

let () =
  (* 1. A deterministic simulated shared-memory machine with n processes. *)
  let rt = Runtime.create ~seed:2026L ~n () in

  (* 2. The paper's stack: Ω∆ (Figure 3) + a query-abortable counter +
        the TBWF transformation (Figure 7). The always-abort policy makes
        the counter abort every operation that runs under step contention —
        the harshest adversary the spec allows. *)
  let omega = Tbwf_system.System.install_atomic rt in
  let qa =
    Qa_object.create rt ~name:"counter" ~spec:Counter.spec
      ~policy:Abort_policy.Always ()
  in
  let tbwf = Tbwf.make ~qa ~omega_handles:omega.handles () in

  (* 3. Four clients, each incrementing the counter 25 times. *)
  let stats = Workload.fresh_stats ~n in
  Workload.spawn_clients rt ~pids:[ 0; 1; 2; 3 ] ~stats
    ~invoke:(Tbwf.invoke tbwf)
    ~next_op:(Workload.n_times ops_per_process Counter.inc);

  (* 4. Run under a fair schedule until every client is done. *)
  Runtime.run rt ~policy:(Policy.round_robin ()) ~steps:2_000_000;
  Runtime.stop rt;

  Fmt.pr "per-process completions: %a@."
    Fmt.(array ~sep:(any ", ") int)
    stats.Workload.completed;
  Fmt.pr "final counter value:     %a@." Value.pp (qa.Qa_intf.peek_state ());
  Fmt.pr "expected:                %d@." (n * ops_per_process);
  assert (Value.equal (qa.Qa_intf.peek_state ()) (Value.Int (n * ops_per_process)));
  Fmt.pr "every process finished all its operations — wait-free when everyone \
          is timely.@."
