(* A consistent progress dashboard over an atomic snapshot.

   Workers process items and publish (items-done, last-item) into their
   segment of a wait-free atomic snapshot (Afek et al., built from atomic
   registers — the same substrate family the paper's constructions live
   on). A dashboard process scans concurrently: because the snapshot is
   atomic, every view it prints is a consistent cut — total work never
   appears to decrease and never double-counts a worker mid-update — even
   though one worker keeps decelerating.

     dune exec examples/snapshot_dashboard.exe
*)

open Tbwf_sim
open Tbwf_objects

let n = 5 (* four workers + one dashboard process *)

let () =
  let rt = Runtime.create ~seed:77L ~n () in
  let snap =
    Atomic_snapshot.create rt ~name:"progress" ~init:(Value.Pair (Int 0, Int 0))
  in
  (* Workers 0-3: publish progress after every "item". Worker 0 decelerates. *)
  for pid = 0 to 3 do
    Runtime.spawn rt ~pid ~name:"worker" (fun () ->
        let items = ref 0 in
        while true do
          (* simulate work *)
          for _ = 1 to 5 do
            Runtime.yield ()
          done;
          incr items;
          Atomic_snapshot.update snap (Value.Pair (Int !items, Int (100 * pid)))
        done)
  done;
  (* Dashboard on pid 4: scan and print; check monotonicity of the total. *)
  let printed = ref [] in
  Runtime.spawn rt ~pid:4 ~name:"dashboard" (fun () ->
      while true do
        let view = Atomic_snapshot.scan snap in
        let total =
          Array.fold_left
            (fun acc seg ->
              match seg with
              | Value.Pair (Int done_, _) -> acc + done_
              | _ -> acc)
            0 view
        in
        printed := total :: !printed;
        for _ = 1 to 200 do
          Runtime.yield ()
        done
      done);
  let policy =
    Policy.of_patterns
      (List.init n (fun pid ->
           if pid = 0 then
             pid, Policy.Slowing { initial_gap = 80; growth = 1.25; burst = 8 }
           else pid, Policy.Weighted 1.0))
  in
  Runtime.run rt ~policy ~steps:120_000;
  Runtime.stop rt;
  let samples = List.rev !printed in
  Fmt.pr "dashboard saw total work: %a@."
    Fmt.(list ~sep:(any " ") int)
    (List.filteri (fun i _ -> i mod 5 = 0) samples);
  let monotone =
    let rec check = function
      | a :: (b :: _ as rest) -> a <= b && check rest
      | [ _ ] | [] -> true
    in
    check samples
  in
  Fmt.pr "every printed view was a consistent cut (totals monotone): %b@."
    monotone;
  assert monotone;
  Fmt.pr
    "the decelerating worker's stale segment never corrupted a view — scans \
     are atomic, and they stay wait-free because helping embeds a view in \
     every update.@."
